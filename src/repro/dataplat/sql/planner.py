"""AST → logical plan, plus rule-based optimization.

Two classic optimizations are implemented — the ones that matter for the
feature-engineering workload of wide scans over monthly telco tables:

* **Predicate pushdown** — conjuncts of the WHERE clause move below joins to
  the side whose bindings they reference, shrinking join inputs.
* **Projection pruning** — scans read only the columns any operator above
  them references, which matters for the 140-column BSS tables.
"""

from __future__ import annotations

from .ast_nodes import (
    BinaryOp,
    ColumnRef,
    Expr,
    OrderItem,
    SelectStatement,
    Star,
    UnionAllStatement,
)
from .plan import (
    Aggregate,
    Distinct,
    Filter,
    Join,
    Limit,
    PlanNode,
    Project,
    Scan,
    Sort,
    UnionAll,
)


def build_plan(stmt: "SelectStatement | UnionAllStatement") -> PlanNode:
    """Lower a parsed statement into an unoptimized logical plan."""
    if isinstance(stmt, UnionAllStatement):
        return UnionAll(tuple(build_plan(s) for s in stmt.selects))
    node: PlanNode = Scan(stmt.table.name, stmt.table.binding)
    for join in stmt.joins:
        right: PlanNode = Scan(join.table.name, join.table.binding)
        node = Join(node, right, join.kind, join.condition)
    if stmt.where is not None:
        node = Filter(node, stmt.where)
    needs_aggregate = bool(stmt.group_by) or any(
        item.expr.has_aggregate() for item in stmt.items
    )
    if needs_aggregate:
        node = Aggregate(node, stmt.group_by, stmt.items, stmt.having)
        if stmt.distinct:
            node = Distinct(node)
        if stmt.order_by:
            node = Sort(node, stmt.order_by)
    else:
        # ORDER BY may reference source columns that the projection drops
        # (``SELECT imsi FROM cdr ORDER BY dur``), so sort below the
        # projection, first rewriting alias references to their expressions.
        order_by = tuple(
            OrderItem(_dealias(item.expr, stmt.items), item.descending)
            for item in stmt.order_by
        )
        if order_by:
            node = Sort(node, order_by)
        node = Project(node, stmt.items)
        if stmt.distinct:
            node = Distinct(node)
    if stmt.limit is not None:
        node = Limit(node, stmt.limit)
    return node


def _dealias(expr: Expr, items: tuple) -> Expr:
    """Replace a bare reference to a select alias with the aliased expr."""
    if isinstance(expr, ColumnRef) and expr.table is None:
        for item in items:
            if item.alias == expr.name:
                return item.expr
    return expr


def optimize(plan: PlanNode) -> PlanNode:
    """Apply the rewrite rules until a fixed point (max two passes needed)."""
    plan = _push_down_predicates(plan)
    plan = _prune_projections(plan, required=set())
    return plan


# ----------------------------------------------------------------------
# Predicate pushdown
# ----------------------------------------------------------------------


def _split_conjuncts(expr: Expr) -> list[Expr]:
    if isinstance(expr, BinaryOp) and expr.op == "AND":
        return _split_conjuncts(expr.left) + _split_conjuncts(expr.right)
    return [expr]


def _combine_conjuncts(conjuncts: list[Expr]) -> Expr:
    out = conjuncts[0]
    for term in conjuncts[1:]:
        out = BinaryOp("AND", out, term)
    return out


def _bindings_of(node: PlanNode) -> set[str]:
    """Table bindings visible at the output of ``node``."""
    if isinstance(node, Scan):
        return {node.binding}
    out: set[str] = set()
    for child in node.children():
        out |= _bindings_of(child)
    return out


def _expr_bindings(expr: Expr) -> set[str] | None:
    """Bindings referenced by ``expr``; None if any reference is unqualified.

    Unqualified references cannot be attributed to one join side safely, so
    predicates containing them stay above the join.
    """
    out: set[str] = set()
    for name in expr.columns():
        if "." not in name:
            return None
        out.add(name.split(".", 1)[0])
    return out


def _push_down_predicates(node: PlanNode) -> PlanNode:
    if isinstance(node, Filter):
        child = _push_down_predicates(node.child)
        if isinstance(child, Join):
            remaining: list[Expr] = []
            left_terms: list[Expr] = []
            right_terms: list[Expr] = []
            left_bindings = _bindings_of(child.left)
            right_bindings = _bindings_of(child.right)
            for term in _split_conjuncts(node.predicate):
                refs = _expr_bindings(term)
                if refs is not None and refs and refs <= left_bindings:
                    left_terms.append(term)
                elif (
                    refs is not None
                    and refs
                    and refs <= right_bindings
                    and child.kind == "inner"
                ):
                    # For left joins, filtering the right side early would
                    # change which rows get null-extended; keep above.
                    right_terms.append(term)
                else:
                    remaining.append(term)
            left = child.left
            right = child.right
            if left_terms:
                left = _push_down_predicates(
                    Filter(left, _combine_conjuncts(left_terms))
                )
            if right_terms:
                right = _push_down_predicates(
                    Filter(right, _combine_conjuncts(right_terms))
                )
            new_join = Join(left, right, child.kind, child.condition)
            if remaining:
                return Filter(new_join, _combine_conjuncts(remaining))
            return new_join
        return Filter(child, node.predicate)
    # Recurse structurally for the other operators.
    if isinstance(node, Join):
        return Join(
            _push_down_predicates(node.left),
            _push_down_predicates(node.right),
            node.kind,
            node.condition,
        )
    if isinstance(node, Project):
        return Project(_push_down_predicates(node.child), node.items)
    if isinstance(node, Aggregate):
        return Aggregate(
            _push_down_predicates(node.child),
            node.group_by,
            node.items,
            node.having,
        )
    if isinstance(node, Sort):
        return Sort(_push_down_predicates(node.child), node.order_by)
    if isinstance(node, Limit):
        return Limit(_push_down_predicates(node.child), node.count)
    if isinstance(node, Distinct):
        return Distinct(_push_down_predicates(node.child))
    if isinstance(node, UnionAll):
        return UnionAll(tuple(_push_down_predicates(c) for c in node.inputs))
    return node


# ----------------------------------------------------------------------
# Projection pruning
# ----------------------------------------------------------------------


def _referenced_columns(node: PlanNode) -> set[str] | None:
    """Columns an operator itself references (qualified or bare).

    Returns None to mean "everything" (e.g. ``SELECT *``).
    """
    if isinstance(node, (Project, Aggregate)):
        out: set[str] = set()
        for item in node.items:
            if isinstance(item.expr, Star):
                return None
            out |= item.expr.columns()
        if isinstance(node, Aggregate):
            for expr in node.group_by:
                out |= expr.columns()
            if node.having is not None:
                out |= node.having.columns()
        return out
    if isinstance(node, Filter):
        return node.predicate.columns()
    if isinstance(node, Join):
        return node.condition.columns()
    if isinstance(node, Sort):
        out = set()
        for item in node.order_by:
            out |= item.expr.columns()
        return out
    return set()


def _prune_projections(node: PlanNode, required: set[str] | None = None) -> PlanNode:
    """Push the set of required columns down to the scans.

    ``required`` is the set of (possibly qualified) names needed above this
    node, or None for "all columns".
    """
    own = _referenced_columns(node)
    if own is None or required is None:
        needed: set[str] | None = None
    else:
        needed = required | own

    if isinstance(node, Scan):
        if needed is None:
            return node
        cols = set()
        prefix = f"{node.binding}."
        for name in needed:
            if name.startswith(prefix):
                cols.add(name[len(prefix):])
            elif "." not in name:
                cols.add(name)
        return Scan(node.table, node.binding, tuple(sorted(cols)) if cols else None)
    if isinstance(node, Filter):
        return Filter(_prune_projections(node.child, needed), node.predicate)
    if isinstance(node, Join):
        return Join(
            _prune_projections(node.left, needed),
            _prune_projections(node.right, needed),
            node.kind,
            node.condition,
        )
    if isinstance(node, Project):
        return Project(_prune_projections(node.child, needed), node.items)
    if isinstance(node, Aggregate):
        return Aggregate(
            _prune_projections(node.child, needed),
            node.group_by,
            node.items,
            node.having,
        )
    if isinstance(node, Sort):
        # Below-projection sorts contribute their key columns; an
        # above-aggregate sort references output columns, which resolve via
        # the executor's bare-name fallback — pruning keys is still safe
        # because the aggregate declares everything it needs itself.
        return Sort(_prune_projections(node.child, needed), node.order_by)
    if isinstance(node, Limit):
        return Limit(_prune_projections(node.child, required), node.count)
    if isinstance(node, Distinct):
        return Distinct(_prune_projections(node.child, required))
    if isinstance(node, UnionAll):
        # Each branch has its own projection; prune independently.
        return UnionAll(
            tuple(_prune_projections(c, set()) for c in node.inputs)
        )
    return node
