"""Typed schemas for columnar tables.

A :class:`Schema` is an ordered collection of :class:`Column` definitions.
Types are intentionally few — the four the telco tables need — and each maps
onto a canonical numpy dtype so table columns are always well-typed arrays.
"""

from __future__ import annotations

import enum
from collections.abc import Iterable, Iterator
from dataclasses import dataclass

import numpy as np

from ..errors import SchemaError


class ColumnType(enum.Enum):
    """Logical column types supported by the platform."""

    INT = "int"
    FLOAT = "float"
    STRING = "string"
    BOOL = "bool"

    @property
    def dtype(self) -> np.dtype:
        """Canonical numpy dtype backing this logical type."""
        return _DTYPES[self]

    @classmethod
    def infer(cls, values: np.ndarray) -> "ColumnType":
        """Infer the logical type of a numpy array."""
        kind = values.dtype.kind
        if kind == "b":
            return cls.BOOL
        if kind in "iu":
            return cls.INT
        if kind == "f":
            return cls.FLOAT
        if kind in "UOS":
            return cls.STRING
        raise SchemaError(f"cannot infer a column type for dtype {values.dtype}")


_DTYPES = {
    ColumnType.INT: np.dtype(np.int64),
    ColumnType.FLOAT: np.dtype(np.float64),
    ColumnType.STRING: np.dtype(object),
    ColumnType.BOOL: np.dtype(np.bool_),
}


@dataclass(frozen=True)
class Column:
    """A named, typed column."""

    name: str
    ctype: ColumnType

    def __post_init__(self) -> None:
        # Dots are allowed: the SQL executor qualifies columns as
        # ``binding.column`` while a query is in flight.
        cleaned = self.name.replace("_", "a").replace(".", "a")
        if not self.name or not cleaned.isalnum():
            raise SchemaError(f"invalid column name: {self.name!r}")

    def cast(self, values: Iterable) -> np.ndarray:
        """Coerce ``values`` into this column's canonical dtype."""
        arr = np.asarray(values)
        if self.ctype is ColumnType.STRING:
            if arr.dtype == object:
                return arr
            return arr.astype(object)
        try:
            return arr.astype(self.ctype.dtype, copy=False)
        except (TypeError, ValueError) as exc:
            raise SchemaError(
                f"column {self.name!r}: cannot cast dtype {arr.dtype} "
                f"to {self.ctype.value}"
            ) from exc


class Schema:
    """An ordered set of :class:`Column` definitions.

    Schemas are immutable; transformation methods return new schemas.
    """

    def __init__(self, columns: Iterable[Column]) -> None:
        cols = tuple(columns)
        names = [c.name for c in cols]
        dupes = {n for n in names if names.count(n) > 1}
        if dupes:
            raise SchemaError(f"duplicate column names: {sorted(dupes)}")
        self._columns = cols
        self._by_name = {c.name: c for c in cols}

    @classmethod
    def of(cls, **types: ColumnType | str) -> "Schema":
        """Build a schema from keyword arguments.

        >>> Schema.of(imsi="int", dur="float").names
        ('imsi', 'dur')
        """
        cols = []
        for name, ctype in types.items():
            if isinstance(ctype, str):
                ctype = ColumnType(ctype)
            cols.append(Column(name, ctype))
        return cls(cols)

    @property
    def columns(self) -> tuple[Column, ...]:
        return self._columns

    @property
    def names(self) -> tuple[str, ...]:
        return tuple(c.name for c in self._columns)

    def __len__(self) -> int:
        return len(self._columns)

    def __iter__(self) -> Iterator[Column]:
        return iter(self._columns)

    def __contains__(self, name: object) -> bool:
        return name in self._by_name

    def __getitem__(self, name: str) -> Column:
        try:
            return self._by_name[name]
        except KeyError:
            raise SchemaError(
                f"unknown column {name!r}; available: {list(self.names)}"
            ) from None

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Schema):
            return NotImplemented
        return self._columns == other._columns

    def __hash__(self) -> int:
        return hash(self._columns)

    def __repr__(self) -> str:
        body = ", ".join(f"{c.name}: {c.ctype.value}" for c in self._columns)
        return f"Schema({body})"

    def select(self, names: Iterable[str]) -> "Schema":
        """Project onto a subset of columns, in the given order."""
        return Schema(self[n] for n in names)

    def rename(self, mapping: dict[str, str]) -> "Schema":
        """Return a schema with columns renamed per ``mapping``."""
        return Schema(
            Column(mapping.get(c.name, c.name), c.ctype) for c in self._columns
        )

    def concat(self, other: "Schema") -> "Schema":
        """Append another schema's columns (names must not collide)."""
        overlap = set(self.names) & set(other.names)
        if overlap:
            raise SchemaError(f"cannot concat schemas; shared columns {sorted(overlap)}")
        return Schema(self._columns + other.columns)
