"""Write-ahead journal: crash-atomic catalog mutations, recovery, fsck.

Every persistent catalog mutation (partition save/overwrite, drop, format
migration, telemetry-sink append) runs as a journaled transaction:

1. **Stage** — new files are written under
   ``/warehouse/{db}/{table}/.staging/{txn}/``, never at their final
   paths.  Column chunks get version-stamped final names
   (``{col}.{txn:08d}.chunk``) so publishing can never clobber a
   previously committed chunk.
2. **Intent** — a checksummed record listing every planned rename
   (``moves``), every post-commit delete (``cleanup``) and the staged
   files' CRCs is appended to the per-table journal at
   ``/journal/{db}/{table}/{txn:08d}-intent.rec``.
3. **Barrier** — staged files and the intent record are fsynced (per the
   :class:`Durability` mode).
4. **Commit** — a commit record is appended and fsynced.  This is the
   durable decision point: recovery rolls a transaction *forward* iff its
   commit record survives.
5. **Publish** — staged files are renamed to their final paths (column
   chunks first, the partition manifest last — the manifest rename is the
   atomic visibility switch for readers).
6. **Cleanup** — files of the replaced version are deleted, and a *done*
   record marks the transaction finished.

Recovery (:func:`plan_recovery` + :func:`apply_recovery`, driven by
``Catalog.open``) replays committed-but-unfinished transactions, rolls
back uncommitted ones, sweeps staging/orphan files, and re-registers
partitions from journal checkpoints — falling back to the identity fields
embedded in v2 manifests when the journal itself is gone.  The same plan,
rendered instead of applied, is the ``scripts/fsck.py`` report.

Records are one file each (``{txn:08d}-{kind}.rec``) instead of one
appended log, because the block store models whole-file writes: a torn
append would invalidate the entire log, while a torn record file fails its
own CRC and is discarded alone.  Checkpoint records bound journal growth.
"""

from __future__ import annotations

import json
import re
import zlib
from dataclasses import dataclass, field

from ..errors import CatalogError, StorageError
from .blockstore import BlockStore
from .columnar import MANIFEST_SUFFIX, PartitionManifest, chunk_dir
from .schema import Column, ColumnType, Schema

#: Root of all per-table journals.
JOURNAL_ROOT = "/journal"

#: Name of the staging directory inside a table's warehouse directory.
STAGING_DIR = ".staging"

#: Suffix of one journal record file.
RECORD_SUFFIX = ".rec"

#: Record kinds a journal may contain, in protocol order.
RECORD_KINDS = ("intent", "commit", "done", "abort", "checkpoint")

#: Supported fsync modes (see :class:`Durability`).
FSYNC_MODES = ("always", "commit", "never")

_RECORD_FILE_RE = re.compile(r"^(\d{8})-([a-z]+)\.rec$")
_CHUNK_VERSION_RE = re.compile(r"\.(\d{8})\.chunk$")


@dataclass(frozen=True)
class Durability:
    """Crash-safety knobs for catalog writes.

    ``journal``
        When false, writes go straight to their final paths with no
        intent/commit records — the pre-journal fast path, used as the
        benchmark baseline for journal overhead.  Crash atomicity is then
        limited to what manifest adoption can reconstruct.
    ``fsync``
        ``"always"`` syncs every write as it happens; ``"commit"`` (the
        default) syncs at the two protocol barriers (staged files + intent,
        then the commit record), which is the cheapest mode that keeps
        committed transactions durable; ``"never"`` issues no barriers —
        crash *consistency* still holds (recovery rolls the whole
        transaction back), but a committed transaction may be lost.
    ``compact_after``
        Rewrite a table's journal as a single checkpoint record once it
        holds more than this many record files.
    """

    journal: bool = True
    fsync: str = "commit"
    compact_after: int = 64

    def __post_init__(self) -> None:
        if self.fsync not in FSYNC_MODES:
            raise CatalogError(
                f"unknown fsync mode {self.fsync!r}; expected one of {FSYNC_MODES}"
            )
        if self.compact_after < 2:
            raise CatalogError(
                f"compact_after must be >= 2, got {self.compact_after}"
            )

    @classmethod
    def disabled(cls) -> "Durability":
        """No journal, no barriers — the pre-journal write path."""
        return cls(journal=False, fsync="never")

    @property
    def sync_every_write(self) -> bool:
        return self.fsync == "always"

    @property
    def sync_on_commit(self) -> bool:
        return self.fsync != "never"


# ----------------------------------------------------------------------
# Record codec and paths
# ----------------------------------------------------------------------


def encode_record(doc: dict) -> bytes:
    """Serialize one journal record: ``crc32(body) + " " + json body``."""
    body = json.dumps(doc, sort_keys=True).encode("utf-8")
    return f"{zlib.crc32(body) & 0xFFFFFFFF:08x} ".encode("ascii") + body


def decode_record(payload: bytes) -> dict | None:
    """Parse a record; ``None`` for torn or corrupt payloads.

    A record that fails its CRC is treated exactly like one that was never
    written — that is the contract that makes torn journal tails safe.
    """
    try:
        head, body = payload.split(b" ", 1)
        if int(head, 16) != zlib.crc32(body) & 0xFFFFFFFF:
            return None
        doc = json.loads(body.decode("utf-8"))
    except (ValueError, UnicodeDecodeError):
        return None
    return doc if isinstance(doc, dict) else None


def journal_dir(database: str, table: str) -> str:
    return f"{JOURNAL_ROOT}/{database}/{table}"


def record_path(database: str, table: str, txn: int, kind: str) -> str:
    return f"{journal_dir(database, table)}/{txn:08d}-{kind}{RECORD_SUFFIX}"


def staging_root(database: str, table: str) -> str:
    return f"/warehouse/{database}/{table}/{STAGING_DIR}"


def staging_dir(database: str, table: str, txn: int) -> str:
    return f"{staging_root(database, table)}/{txn:08d}"


def schema_doc(schema: Schema) -> list[list[str]]:
    """A JSON-serializable ``[[name, ctype], ...]`` schema listing."""
    return [[c.name, c.ctype.value] for c in schema]


def schema_from_doc(doc) -> Schema:
    return Schema(Column(str(n), ColumnType(str(c))) for n, c in doc)


class TableJournal:
    """Appender for one table's journal."""

    def __init__(
        self, store: BlockStore, database: str, table: str, durability: Durability
    ) -> None:
        self._store = store
        self.database = database
        self.table = table
        self.durability = durability
        self.dir = journal_dir(database, table)

    def append(self, kind: str, doc: dict, txn: int, sync: bool) -> str:
        """Write one record file; fsync it when ``sync``."""
        path = record_path(self.database, self.table, txn, kind)
        payload = encode_record(
            {
                **doc,
                "txn": txn,
                "kind": kind,
                "db": self.database,
                "table": self.table,
            }
        )
        self._store.write(path, payload)
        if sync:
            self._store.fsync(path)
        return path

    def record_files(self) -> list[str]:
        return self._store.list_files(self.dir + "/")

    def compact(
        self,
        txn: int,
        partitions: dict[str, str],
        schema: Schema | None,
    ) -> None:
        """Replace the journal with one checkpoint record at ``txn``.

        The checkpoint is written and synced before any old record is
        deleted, so a crash anywhere in between leaves a recoverable
        journal (recovery ignores records at or below the checkpoint txn).
        """
        self.append(
            "checkpoint",
            {
                "partitions": dict(partitions),
                "schema": schema_doc(schema) if schema is not None else None,
            },
            txn,
            sync=self.durability.sync_on_commit,
        )
        checkpoint = record_path(self.database, self.table, txn, "checkpoint")
        for path in self.record_files():
            if path != checkpoint:
                self._store.delete(path)

    def destroy(self) -> None:
        """Delete every record (the table no longer exists)."""
        for path in self.record_files():
            self._store.delete(path)


# ----------------------------------------------------------------------
# Journal parsing
# ----------------------------------------------------------------------


@dataclass
class _TableJournalState:
    """Parsed journal of one table."""

    database: str
    table: str
    #: txn -> kind -> record doc (only intact records).
    txns: dict[int, dict[str, dict]] = field(default_factory=dict)
    #: Record files that failed CRC/shape validation (torn writes).
    torn: list[str] = field(default_factory=list)
    #: All record paths seen, intact or not.
    record_paths: list[str] = field(default_factory=list)

    @property
    def checkpoint_txn(self) -> int:
        """Highest intact checkpoint txn, or -1."""
        best = -1
        for txn, kinds in self.txns.items():
            if "checkpoint" in kinds:
                best = max(best, txn)
        return best


def load_journal(store: BlockStore) -> dict[tuple[str, str], _TableJournalState]:
    """Parse every journal record on the store, tolerating torn files."""
    states: dict[tuple[str, str], _TableJournalState] = {}
    for path in store.list_files(JOURNAL_ROOT + "/"):
        parts = path[len(JOURNAL_ROOT) + 1 :].split("/")
        if len(parts) != 3:
            continue  # not a per-table record layout; leave it alone
        database, table, fname = parts
        state = states.setdefault(
            (database, table), _TableJournalState(database, table)
        )
        state.record_paths.append(path)
        match = _RECORD_FILE_RE.match(fname)
        doc = decode_record(store.read(path)) if match else None
        if (
            match is None
            or doc is None
            or doc.get("kind") != match.group(2)
            or doc.get("txn") != int(match.group(1))
            or doc.get("kind") not in RECORD_KINDS
        ):
            state.torn.append(path)
            continue
        txn = int(match.group(1))
        state.txns.setdefault(txn, {})[doc["kind"]] = doc
    return states


# ----------------------------------------------------------------------
# Recovery planning (read-only)
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class TxnPlan:
    """Disposition of one journaled transaction found at recovery."""

    database: str
    table: str
    txn: int
    op: str  # "save" | "drop"
    disposition: str  # "applied" | "replay" | "rollback" | "aborted" | "lost"
    intent: dict | None


@dataclass
class FsckIssue:
    """One finding of the consistency scan."""

    kind: str
    path: str
    detail: str = ""

    def render(self) -> str:
        text = f"[{self.kind}] {self.path}"
        return f"{text} — {self.detail}" if self.detail else text


@dataclass
class RecoveryPlan:
    """Everything recovery would do, computed without mutating the store.

    ``apply_recovery`` executes it; fsck renders it.  ``deletes`` carries
    ``(path, reason)`` pairs so the report can attribute each removal.
    """

    tables: dict[tuple[str, str], dict[str, str]] = field(default_factory=dict)
    schemas_raw: dict[tuple[str, str], list] = field(default_factory=dict)
    replays: list[TxnPlan] = field(default_factory=list)
    rollbacks: list[TxnPlan] = field(default_factory=list)
    lost: list[TxnPlan] = field(default_factory=list)
    deletes: list[tuple[str, str]] = field(default_factory=list)
    torn_records: list[str] = field(default_factory=list)
    adopted: list[tuple[str, str, str, str]] = field(default_factory=list)
    issues: list[FsckIssue] = field(default_factory=list)
    #: Tables whose journal should be rewritten as a checkpoint.
    checkpoint_tables: set = field(default_factory=set)
    max_txn: int = 0

    @property
    def clean(self) -> bool:
        return not (
            self.replays
            or self.rollbacks
            or self.lost
            or self.deletes
            or self.torn_records
            or self.adopted
            or self.issues
        )


def _intent_moves(intent: dict) -> list[tuple[str, str]]:
    return [(str(s), str(d)) for s, d in intent.get("moves", [])]


def _staged_intact(store: BlockStore, intent: dict, src: str) -> bool:
    """Whether a staged file exists and matches its recorded CRC."""
    if not store.exists(src):
        return False
    crc = intent.get("crcs", {}).get(src)
    if crc is None:
        return True
    return (zlib.crc32(store.read(src)) & 0xFFFFFFFF) == int(crc)


def _move_satisfiable(store: BlockStore, intent: dict, src: str, dst: str) -> bool:
    return store.exists(dst) or _staged_intact(store, intent, src)


def _resolve_table(
    store: BlockStore, state: _TableJournalState, plan: RecoveryPlan
) -> None:
    """Fold one table's journal into the plan: final registration + txn
    dispositions."""
    key = (state.database, state.table)
    registrations: dict[str, str] = {}
    schema_raw = None
    checkpoint_txn = state.checkpoint_txn
    dirty = bool(state.torn)
    for txn in sorted(state.txns):
        plan.max_txn = max(plan.max_txn, txn)
        kinds = state.txns[txn]
        if txn < checkpoint_txn or (
            txn == checkpoint_txn and "checkpoint" not in kinds
        ):
            dirty = True  # pre-checkpoint leftovers; fold away
            continue
        if "checkpoint" in kinds:
            doc = kinds["checkpoint"]
            registrations = {
                str(p): str(path) for p, path in doc.get("partitions", {}).items()
            }
            if doc.get("schema") is not None:
                schema_raw = doc["schema"]
            continue
        intent = kinds.get("intent")
        committed = "commit" in kinds
        done = "done" in kinds
        aborted = "abort" in kinds
        if intent is None:
            # Commit/done/abort whose intent is torn or compacted away.
            # Nothing can be replayed; committed-without-intent means a
            # durability-mode weaker than the data (counted as lost unless
            # the txn also finished, in which case adoption re-registers).
            if committed and not done:
                plan.lost.append(
                    TxnPlan(*key, txn, "unknown", "lost", None)
                )
                dirty = True
            continue
        op = str(intent.get("op", "save"))
        if aborted and not committed:
            plan.rollbacks.append(TxnPlan(*key, txn, op, "aborted", intent))
            continue
        if not committed:
            plan.rollbacks.append(TxnPlan(*key, txn, op, "rollback", intent))
            dirty = True
            continue
        # Committed: decide replayability before touching registration.
        if op == "save":
            feasible = all(
                _move_satisfiable(store, intent, src, dst)
                for src, dst in _intent_moves(intent)
            )
            if not feasible:
                plan.lost.append(TxnPlan(*key, txn, op, "lost", intent))
                dirty = True
                continue
            registrations[str(intent["partition"])] = str(intent["path"])
            if intent.get("schema") is not None:
                schema_raw = intent["schema"]
        elif op == "drop":
            registrations.pop(str(intent["partition"]), None)
        if not done:
            plan.replays.append(TxnPlan(*key, txn, op, "replay", intent))
            dirty = True
    for path in state.torn:
        plan.torn_records.append(path)
    if registrations:
        plan.tables[key] = registrations
        if schema_raw is not None:
            plan.schemas_raw[key] = schema_raw
    if dirty:
        plan.checkpoint_tables.add(key)


def _manifest_or_none(
    store: BlockStore, path: str, memo: dict
) -> PartitionManifest | None:
    if path in memo:
        return memo[path]
    manifest = None
    if store.exists(path):
        try:
            manifest = PartitionManifest.from_bytes(store.read(path))
        except (StorageError, ValueError, KeyError, TypeError):
            manifest = None
    memo[path] = manifest
    return manifest


def partition_residue(
    store: BlockStore, path: str, memo: dict | None = None
) -> list[str]:
    """Every store file attributable to a partition registered at ``path``,
    including mixed-format siblings left by interrupted migrations."""
    if memo is None:
        memo = {}
    files = []
    candidates = [path]
    if path.endswith(MANIFEST_SUFFIX):
        base = path[: -len(MANIFEST_SUFFIX)]
        candidates.append(base + ".npz")
    elif path.endswith(".npz"):
        base = path[: -len(".npz")]
        candidates.append(base + MANIFEST_SUFFIX)
    else:
        base = path
    for candidate in candidates:
        if candidate.endswith(MANIFEST_SUFFIX):
            manifest = _manifest_or_none(store, candidate, memo)
            if manifest is not None:
                files.extend(
                    c.path for c in manifest.chunks if store.exists(c.path)
                )
            files.extend(store.list_files(chunk_dir(candidate)))
        if store.exists(candidate):
            files.append(candidate)
    return sorted(set(files))


def _validate_registrations(
    store: BlockStore, plan: RecoveryPlan, memo: dict
) -> None:
    """Drop registrations whose backing files are gone or torn.

    Partitions still awaiting replay validate through the staged copies
    (replay feasibility was already checked), so only settled
    registrations are examined against final paths.
    """
    pending = {
        (t.database, t.table, str(t.intent["partition"]))
        for t in plan.replays
        if t.intent is not None and t.op == "save"
    }
    for key, regs in list(plan.tables.items()):
        for partition, path in list(regs.items()):
            if (key[0], key[1], partition) in pending:
                continue
            ok = store.exists(path)
            if ok and path.endswith(MANIFEST_SUFFIX):
                manifest = _manifest_or_none(store, path, memo)
                ok = manifest is not None and all(
                    store.exists(c.path) for c in manifest.chunks
                )
            if ok:
                continue
            regs.pop(partition)
            plan.checkpoint_tables.add(key)
            for residue in partition_residue(store, path, memo):
                plan.deletes.append((residue, "invalid-partition"))
            plan.issues.append(
                FsckIssue(
                    "invalid-partition",
                    path,
                    f"{key[0]}.{key[1]}/{partition}: backing files missing "
                    f"or torn; partition deregistered",
                )
            )
        if not regs:
            plan.tables.pop(key)
            plan.schemas_raw.pop(key, None)


def _plan_sweeps(store: BlockStore, plan: RecoveryPlan, memo: dict) -> None:
    """Adoption of journal-less manifests, then orphan/staging sweeps."""
    registered = {
        path for regs in plan.tables.values() for path in regs.values()
    }
    replay_sources = set()
    replay_cleanup = set()
    for txn_plan in plan.replays:
        if txn_plan.intent is not None:
            for src, _dst in _intent_moves(txn_plan.intent):
                replay_sources.add(src)
            replay_cleanup.update(
                str(p) for p in txn_plan.intent.get("cleanup", [])
            )
    rollback_targets = set()
    for txn_plan in plan.rollbacks:
        if txn_plan.intent is not None:
            for src, _dst in _intent_moves(txn_plan.intent):
                rollback_targets.add(src)

    preserved_manifests = set()
    for path in store.list_files("/warehouse/"):
        if not path.endswith(MANIFEST_SUFFIX) or path in registered:
            continue
        if STAGING_DIR in path.split("/"):
            continue
        if path in replay_cleanup:
            continue  # a pending replay deletes this; never re-adopt it
        manifest = _manifest_or_none(store, path, memo)
        if manifest is None:
            plan.deletes.append((path, "torn-manifest"))
            for chunk_path in store.list_files(chunk_dir(path)):
                plan.deletes.append((chunk_path, "torn-manifest"))
            continue
        identity = manifest.identity
        complete = all(store.exists(c.path) for c in manifest.chunks)
        if identity is None:
            # Pre-journal manifest: readable but unattributable.  Refuse
            # to delete data we cannot attribute; report it instead.
            preserved_manifests.add(path)
            plan.issues.append(
                FsckIssue(
                    "unadoptable-manifest",
                    path,
                    "no identity fields; cannot re-register or attribute",
                )
            )
            continue
        database, table, partition = identity
        key = (database, table)
        if partition in plan.tables.get(key, {}):
            # Journal truth already registers this partition elsewhere:
            # the manifest is residue from a replaced version.
            plan.deletes.append((path, "format-residue"))
            for chunk_path in store.list_files(chunk_dir(path)):
                plan.deletes.append((chunk_path, "format-residue"))
            continue
        if not complete:
            plan.deletes.append((path, "torn-manifest"))
            for chunk_path in store.list_files(chunk_dir(path)):
                plan.deletes.append((chunk_path, "torn-manifest"))
            continue
        expected_schema = plan.schemas_raw.get(key)
        manifest_schema = schema_doc(manifest.schema)
        if expected_schema is not None and expected_schema != manifest_schema:
            preserved_manifests.add(path)
            plan.issues.append(
                FsckIssue(
                    "unadoptable-manifest",
                    path,
                    f"schema differs from {database}.{table}; not adopted",
                )
            )
            continue
        plan.tables.setdefault(key, {})[partition] = path
        plan.schemas_raw.setdefault(key, manifest_schema)
        registered.add(path)
        plan.adopted.append((database, table, partition, path))

    expected = set(registered)
    for regs in plan.tables.values():
        for path in regs.values():
            manifest = _manifest_or_none(store, path, memo)
            if path.endswith(MANIFEST_SUFFIX) and manifest is not None:
                expected.update(c.path for c in manifest.chunks)
    for path in preserved_manifests:
        expected.add(path)
        manifest = _manifest_or_none(store, path, memo)
        if manifest is not None:
            expected.update(c.path for c in manifest.chunks)
    # Chunks that a pending replay will publish exist as staged sources
    # now, but their destinations become expected after replay.
    for txn_plan in plan.replays:
        if txn_plan.intent is not None:
            for _src, dst in _intent_moves(txn_plan.intent):
                expected.add(dst)
                manifest = _manifest_or_none(store, dst, memo)
                if dst.endswith(MANIFEST_SUFFIX) and manifest is not None:
                    expected.update(c.path for c in manifest.chunks)

    planned_deletes = {path for path, _reason in plan.deletes}
    for path in store.list_files("/warehouse/"):
        if path in expected or path in planned_deletes:
            continue
        if path in replay_cleanup:
            continue  # consumed by the replay's cleanup deletes
        if STAGING_DIR in path.split("/"):
            if path in replay_sources:
                continue  # consumed by the replay's renames
            reason = (
                "rollback-staging" if path in rollback_targets else "stale-staging"
            )
            plan.deletes.append((path, reason))
            continue
        if path.endswith(".npz"):
            # A v1 table with no journal and no manifest identity (written
            # with journaling disabled, or its journal wiped).  Like
            # identity-less manifests: never delete data we cannot
            # attribute — report it and leave it in place.
            plan.issues.append(
                FsckIssue(
                    "unattributable-table",
                    path,
                    "no journal record or manifest identity; preserved",
                )
            )
            continue
        plan.deletes.append((path, "orphan"))


def txn_floor(store: BlockStore) -> int:
    """The highest transaction id visible on the store.

    Scans both journal record names and version-stamped chunk names, so a
    catalog opened over a store whose journal was compacted (or wiped)
    still never reuses a txn id that a live chunk file carries.
    """
    floor = 0
    for path in store.list_files(JOURNAL_ROOT + "/"):
        match = _RECORD_FILE_RE.match(path.rsplit("/", 1)[-1])
        if match:
            floor = max(floor, int(match.group(1)))
    for path in store.list_files("/warehouse/"):
        match = _CHUNK_VERSION_RE.search(path)
        if match:
            floor = max(floor, int(match.group(1)))
    return floor


def plan_recovery(store: BlockStore) -> RecoveryPlan:
    """Compute, read-only, everything recovery would change."""
    plan = RecoveryPlan()
    memo: dict[str, PartitionManifest | None] = {}
    for state in load_journal(store).values():
        _resolve_table(store, state, plan)
    _validate_registrations(store, plan, memo)
    _plan_sweeps(store, plan, memo)
    plan.max_txn = max(plan.max_txn, txn_floor(store))
    return plan


# ----------------------------------------------------------------------
# Recovery application (mutating)
# ----------------------------------------------------------------------


@dataclass
class RecoveryReport:
    """What a recovery pass actually did."""

    replayed: int = 0
    rolled_back: int = 0
    orphans_removed: int = 0
    adopted: int = 0
    lost_commits: int = 0
    torn_records: int = 0
    details: list[str] = field(default_factory=list)

    @property
    def clean(self) -> bool:
        """True when the store needed no repair at all."""
        return not (
            self.replayed
            or self.rolled_back
            or self.orphans_removed
            or self.adopted
            or self.lost_commits
            or self.torn_records
        )

    def counters(self) -> dict[str, int]:
        """Counter name → value, for metrics/telemetry export."""
        return {
            "recovery.replayed": self.replayed,
            "recovery.rolled_back": self.rolled_back,
            "recovery.orphans_removed": self.orphans_removed,
            "recovery.adopted": self.adopted,
            "recovery.lost_commits": self.lost_commits,
            "recovery.torn_records": self.torn_records,
        }


def apply_recovery(
    store: BlockStore, plan: RecoveryPlan, durability: Durability | None = None
) -> RecoveryReport:
    """Execute a :func:`plan_recovery` plan; idempotent on re-run."""
    durability = durability if durability is not None else Durability()
    report = RecoveryReport()
    for txn_plan in plan.replays:
        intent = txn_plan.intent
        journal = TableJournal(
            store, txn_plan.database, txn_plan.table, durability
        )
        for src, dst in _intent_moves(intent):
            if store.exists(src):
                store.rename(src, dst)
            if durability.sync_on_commit:
                store.fsync(dst)
        for path in intent.get("cleanup", []):
            if store.exists(path):
                store.delete(path)
        journal.append("done", {}, txn_plan.txn, sync=False)
        report.replayed += 1
        report.details.append(
            f"replayed txn {txn_plan.txn} ({txn_plan.op}) of "
            f"{txn_plan.database}.{txn_plan.table}"
        )
    for txn_plan in plan.rollbacks:
        intent = txn_plan.intent
        removed = 0
        for src, _dst in _intent_moves(intent):
            if store.exists(src):
                store.delete(src)
                removed += 1
        if txn_plan.disposition != "aborted":
            TableJournal(
                store, txn_plan.database, txn_plan.table, durability
            ).append("abort", {}, txn_plan.txn, sync=False)
            report.rolled_back += 1
            report.details.append(
                f"rolled back txn {txn_plan.txn} ({txn_plan.op}) of "
                f"{txn_plan.database}.{txn_plan.table}: "
                f"{removed} staged file(s) removed"
            )
    for txn_plan in plan.lost:
        report.lost_commits += 1
        report.details.append(
            f"lost committed txn {txn_plan.txn} of "
            f"{txn_plan.database}.{txn_plan.table} (staged data not durable)"
        )
        if txn_plan.intent is not None:
            published = str(txn_plan.intent.get("path"))
            for src, dst in _intent_moves(txn_plan.intent):
                for path in (src, dst):
                    if path == published:
                        continue  # may hold the previous committed version
                    if store.exists(path):
                        store.delete(path)
    for path, reason in plan.deletes:
        if store.exists(path):
            store.delete(path)
            if reason == "invalid-partition":
                continue  # already counted as a lost commit by validation
            report.orphans_removed += 1
            report.details.append(f"removed {reason}: {path}")
    for path in plan.torn_records:
        if store.exists(path):
            store.delete(path)
        report.torn_records += 1
        report.details.append(f"discarded torn journal record: {path}")
    for database, table, partition, path in plan.adopted:
        report.adopted += 1
        report.details.append(
            f"adopted {database}.{table}/{partition} from manifest {path}"
        )
    # Convergence: rewrite touched journals as single checkpoints so the
    # next open finds a clean store instead of re-resolving the same txns.
    next_txn = plan.max_txn
    for key in sorted(plan.checkpoint_tables):
        journal = TableJournal(store, key[0], key[1], durability)
        regs = plan.tables.get(key)
        if not regs:
            journal.destroy()
            continue
        schema_raw = plan.schemas_raw.get(key)
        next_txn += 1
        journal.compact(
            next_txn,
            regs,
            schema_from_doc(schema_raw) if schema_raw else None,
        )
    plan.max_txn = next_txn
    return report


@dataclass
class RecoveredCatalog:
    """Registration state handed to ``Catalog.open`` after recovery."""

    tables: dict[tuple[str, str], dict[str, str]]
    schemas: dict[tuple[str, str], Schema]
    report: RecoveryReport
    max_txn: int


def recover_store(
    store: BlockStore, durability: Durability | None = None
) -> RecoveredCatalog:
    """Plan + apply recovery, returning rebuilt catalog registrations."""
    plan = plan_recovery(store)
    report = apply_recovery(store, plan, durability)
    schemas: dict[tuple[str, str], Schema] = {}
    memo: dict[str, PartitionManifest | None] = {}
    for key, regs in plan.tables.items():
        raw = plan.schemas_raw.get(key)
        if raw:
            schemas[key] = schema_from_doc(raw)
            continue
        # No schema on record (e.g., adopted v1 table): infer from data.
        for path in sorted(regs.values()):
            if path.endswith(MANIFEST_SUFFIX):
                manifest = _manifest_or_none(store, path, memo)
                if manifest is not None:
                    schemas[key] = manifest.schema
                    break
            else:
                from .table import Table

                schemas[key] = Table.from_bytes(store.read(path)).schema
                break
    return RecoveredCatalog(
        tables={k: dict(v) for k, v in plan.tables.items()},
        schemas=schemas,
        report=report,
        max_txn=plan.max_txn,
    )


# ----------------------------------------------------------------------
# fsck
# ----------------------------------------------------------------------


@dataclass
class FsckReport:
    """Consistency findings for one store, with optional repair results."""

    issues: list[FsckIssue]
    tables: dict[str, list[str]]
    repaired: RecoveryReport | None = None

    @property
    def clean(self) -> bool:
        return not self.issues

    def counts(self) -> dict[str, int]:
        out: dict[str, int] = {}
        for issue in self.issues:
            out[issue.kind] = out.get(issue.kind, 0) + 1
        return dict(sorted(out.items()))

    def render(self) -> str:
        lines = [
            f"fsck: {len(self.tables)} table(s), "
            f"{sum(len(p) for p in self.tables.values())} partition(s)"
        ]
        for qualified, partitions in sorted(self.tables.items()):
            lines.append(f"  {qualified}: {len(partitions)} partition(s)")
        if self.clean:
            lines.append("clean: no orphans, torn state, or pending transactions")
        else:
            lines.append(f"{len(self.issues)} issue(s):")
            for kind, count in self.counts().items():
                lines.append(f"  {kind}: {count}")
            for issue in self.issues:
                lines.append(f"  - {issue.render()}")
        if self.repaired is not None:
            r = self.repaired
            lines.append(
                "repaired: "
                f"replayed={r.replayed} rolled_back={r.rolled_back} "
                f"orphans_removed={r.orphans_removed} adopted={r.adopted} "
                f"lost_commits={r.lost_commits} torn_records={r.torn_records}"
            )
        return "\n".join(lines)


def fsck_store(
    store: BlockStore,
    repair: bool = False,
    durability: Durability | None = None,
) -> FsckReport:
    """Scan a store for crash damage; optionally repair it.

    Without ``repair`` the store is not mutated.  With it, the recovery
    plan is applied and the report carries what was done; the issue list
    still describes the *pre*-repair state.
    """
    plan = plan_recovery(store)
    issues: list[FsckIssue] = []
    for path in plan.torn_records:
        issues.append(FsckIssue("torn-record", path))
    for txn_plan in plan.replays:
        issues.append(
            FsckIssue(
                "pending-replay",
                record_path(
                    txn_plan.database, txn_plan.table, txn_plan.txn, "intent"
                ),
                f"committed txn {txn_plan.txn} ({txn_plan.op}) not yet applied",
            )
        )
    for txn_plan in plan.rollbacks:
        if txn_plan.disposition == "rollback":
            issues.append(
                FsckIssue(
                    "pending-rollback",
                    record_path(
                        txn_plan.database, txn_plan.table, txn_plan.txn, "intent"
                    ),
                    f"uncommitted txn {txn_plan.txn} ({txn_plan.op})",
                )
            )
    for txn_plan in plan.lost:
        issues.append(
            FsckIssue(
                "lost-commit",
                record_path(
                    txn_plan.database, txn_plan.table, txn_plan.txn, "commit"
                ),
                "committed transaction whose staged data did not survive",
            )
        )
    for path, reason in plan.deletes:
        issues.append(FsckIssue(reason, path))
    for database, table, partition, path in plan.adopted:
        issues.append(
            FsckIssue(
                "adoptable-manifest",
                path,
                f"re-registers {database}.{table}/{partition}",
            )
        )
    issues.extend(plan.issues)
    tables = {
        f"{key[0]}.{key[1]}": sorted(regs)
        for key, regs in sorted(plan.tables.items())
    }
    repaired = None
    if repair:
        repaired = apply_recovery(store, plan, durability)
    return FsckReport(issues=issues, tables=tables, repaired=repaired)
