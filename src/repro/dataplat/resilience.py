"""Fault-tolerant execution runtime: chaos injection, retry, degradation.

The paper's platform survives what a production Hadoop cluster throws at it
— datanode loss, failed tasks, flaky vendor feeds — while still producing a
churn list every month.  This module is the reproduction's resilience layer:

* :class:`SimClock` — a simulated monotonic clock, so backoff schedules are
  testable without wall-clock sleeps;
* :class:`RetryPolicy` — capped exponential backoff with *deterministic*
  jitter (seeded), applied to any retryable callable;
* :class:`FaultPolicy` / :class:`FaultInjector` — a seeded chaos policy
  drawing per-kind Bernoulli faults (transient reads, failed or slow
  partition tasks, flaky vendor records) deterministically, so every chaos
  run is reproducible bit for bit;
* :class:`TaskRuntime` — retrying executor for dataset partition tasks
  (re-execution from lineage, Spark-style) with per-task attempt accounting;
* :class:`PipelineHealthReport` — the structured record of everything the
  runtime absorbed (retries, repaired replicas, quarantined rows, dropped
  feature families) that monitoring and the predictor consume;
* :class:`CatalogTableSource` — a month-table source backed by the catalog
  (hence the block store and its fault paths) instead of in-memory world
  tables, so chaos at the storage layer reaches the feature pipeline.

Only :exc:`~repro.errors.TransientError` is considered retryable; schema
violations, unknown tables and other deterministic failures fail fast.
"""

from __future__ import annotations

import hashlib
from collections.abc import Callable, Iterable
from dataclasses import dataclass, field

import numpy as np

from ..errors import DataPlatformError, StorageError, TransientError

__all__ = [
    "SimClock",
    "RetryPolicy",
    "FaultPolicy",
    "FaultInjector",
    "SimulatedCrash",
    "CrashPoint",
    "TaskRuntime",
    "ResilienceEvent",
    "PipelineHealthReport",
    "CatalogTableSource",
]


class SimulatedCrash(BaseException):
    """An injected process crash at a named crash point.

    Deliberately **not** a :class:`~repro.errors.ReproError` (nor even an
    ``Exception``): a crash is the process dying, so no retry policy,
    quarantine handler or ``except Exception`` recovery path may absorb
    it.  Only the crash-test harness catches it, then reopens the catalog
    and asserts the crash-consistency invariants.
    """

    def __init__(self, point: str, detail: str = "", hit: int = 0) -> None:
        super().__init__(
            f"simulated crash at point {point!r}"
            + (f" ({detail})" if detail else "")
            + f" [hit #{hit}]"
        )
        self.point = point
        self.detail = detail
        self.hit = hit


class CrashPoint:
    """Named crash sites for systematic crash-consistency sweeps.

    Write paths call :meth:`hit` at every named point (each block-store
    mutation, each step of the catalog commit protocol).  A test first
    runs an operation unarmed to *enumerate* the points it passes
    (:attr:`visited`), then re-runs it once per point with
    ``raise_at(k)`` armed: the ``k``-th hit raises
    :class:`SimulatedCrash`, simulating the process dying right there.
    Arming is one-shot — after firing the point disarms itself, so
    recovery code running after the "crash" is not re-crashed.
    """

    def __init__(self) -> None:
        self.hits = 0
        #: ``(label, detail)`` per hit, in order — the enumeration a sweep
        #: iterates over (detail is typically the store path involved).
        self.visited: list[tuple[str, str]] = []
        self._armed: int | None = None

    def raise_at(self, k: int) -> "CrashPoint":
        """Arm a crash at the ``k``-th hit from now (1-based)."""
        if k < 1:
            raise DataPlatformError(f"crash hit index must be >= 1, got {k}")
        self._armed = k
        return self

    def disarm(self) -> None:
        self._armed = None

    @property
    def armed(self) -> bool:
        return self._armed is not None

    def reset(self) -> None:
        """Clear hit counter, visit log, and arming."""
        self.hits = 0
        self.visited = []
        self._armed = None

    def hit(self, label: str, detail: str = "") -> None:
        """Record passing a crash point; raise if the armed hit is reached."""
        self.hits += 1
        self.visited.append((label, detail))
        if self._armed is not None and self.hits >= self._armed:
            self._armed = None
            raise SimulatedCrash(label, detail, self.hits)


class SimClock:
    """A simulated monotonic clock; ``sleep`` advances it instantly."""

    def __init__(self, start: float = 0.0) -> None:
        self._now = float(start)

    @property
    def now(self) -> float:
        return self._now

    def sleep(self, seconds: float) -> None:
        if seconds < 0:
            raise DataPlatformError(f"cannot sleep {seconds} seconds")
        self._now += seconds


@dataclass(frozen=True)
class RetryPolicy:
    """Capped exponential backoff with deterministic jitter.

    The delay before retry ``k`` (0-based) is::

        min(max_delay, base_delay * multiplier**k) * (1 - jitter * u_k)

    where ``u_k`` in [0, 1) is drawn from a generator seeded with
    ``(seed, k)`` — the same policy always produces the same schedule, so
    chaos runs stay reproducible.
    """

    max_attempts: int = 4
    base_delay: float = 0.1
    max_delay: float = 30.0
    multiplier: float = 2.0
    jitter: float = 0.5
    seed: int = 0

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise DataPlatformError(
                f"max_attempts must be >= 1, got {self.max_attempts}"
            )
        if self.base_delay <= 0 or self.max_delay < self.base_delay:
            raise DataPlatformError(
                f"need 0 < base_delay <= max_delay, got "
                f"{self.base_delay}..{self.max_delay}"
            )
        if self.multiplier < 1:
            raise DataPlatformError(
                f"multiplier must be >= 1, got {self.multiplier}"
            )
        if not 0 <= self.jitter <= 1:
            raise DataPlatformError(f"jitter must be in [0, 1], got {self.jitter}")

    def delay(self, retry_index: int) -> float:
        """Backoff before the ``retry_index``-th retry (0-based)."""
        if retry_index < 0:
            raise DataPlatformError(f"retry_index must be >= 0, got {retry_index}")
        raw = min(self.max_delay, self.base_delay * self.multiplier**retry_index)
        u = np.random.default_rng((self.seed, retry_index)).random()
        return raw * (1.0 - self.jitter * u)

    def schedule(self) -> list[float]:
        """The full backoff schedule (one delay per possible retry)."""
        return [self.delay(k) for k in range(self.max_attempts - 1)]

    def call(
        self,
        fn: Callable[[], object],
        clock: SimClock | None = None,
        retryable: tuple[type[BaseException], ...] = (TransientError,),
        on_retry: Callable[[int, float, BaseException], None] | None = None,
    ):
        """Run ``fn``, retrying ``retryable`` failures per the schedule.

        ``on_retry(retry_index, delay, exc)`` is invoked before each sleep,
        for accounting.  The final failure propagates unchanged.
        """
        clock = clock if clock is not None else SimClock()
        for attempt in range(self.max_attempts):
            try:
                return fn()
            except retryable as exc:
                if attempt + 1 >= self.max_attempts:
                    raise
                pause = self.delay(attempt)
                if on_retry is not None:
                    on_retry(attempt, pause, exc)
                clock.sleep(pause)
        raise AssertionError("unreachable")  # pragma: no cover


#: Fault kinds drawn by :class:`FaultInjector`, with stable stream ids so a
#: draw for one kind never perturbs another kind's stream.
FAULT_KINDS = (
    "read_failure",  # transient block-store read failure
    "task_failure",  # dataset partition task dies, needs lineage re-run
    "task_slow",  # straggler task (burns simulated time, still succeeds)
    "stream_failure",  # vendor feed drops the connection mid-extract
    "record_drop",  # vendor feed silently loses a record
    "record_garble",  # vendor feed emits an uncoercible field value
)


@dataclass(frozen=True)
class FaultPolicy:
    """Per-kind fault probabilities (all default to 0 = no chaos)."""

    read_failure_rate: float = 0.0
    task_failure_rate: float = 0.0
    task_slow_rate: float = 0.0
    stream_failure_rate: float = 0.0
    record_drop_rate: float = 0.0
    record_garble_rate: float = 0.0
    #: Simulated seconds a straggler task wastes before finishing.
    slow_task_penalty: float = 5.0

    def __post_init__(self) -> None:
        for kind in FAULT_KINDS:
            rate = self.rate(kind)
            if not 0.0 <= rate < 1.0:
                raise DataPlatformError(
                    f"{kind} rate must be in [0, 1), got {rate}"
                )

    def rate(self, kind: str) -> float:
        try:
            return getattr(self, f"{kind}_rate")
        except AttributeError:
            raise DataPlatformError(f"unknown fault kind {kind!r}") from None


class FaultInjector:
    """Seeded, deterministic chaos source.

    Each fault kind has its own counted stream: the ``n``-th draw for a kind
    is produced by a generator seeded with ``(seed, kind_id, n)``, so the
    decision sequence per kind is independent of how draws for different
    kinds interleave.  ``injected`` counts the faults actually fired.
    """

    def __init__(
        self,
        policy: FaultPolicy | None = None,
        seed: int = 0,
        crash_point: CrashPoint | None = None,
    ) -> None:
        self.policy = policy if policy is not None else FaultPolicy()
        self.seed = seed
        self._draws = {kind: 0 for kind in FAULT_KINDS}
        self.injected: dict[str, int] = {kind: 0 for kind in FAULT_KINDS}
        #: Optional named-crash-site harness; ``None`` means no crash
        #: injection.  Store/catalog write paths call
        #: ``crash_point.hit(label, path)`` at each named point.
        self.crash_point = crash_point

    @classmethod
    def disabled(cls) -> "FaultInjector":
        """An injector that never fires (the zero-fault control)."""
        return cls(FaultPolicy(), seed=0)

    def should(self, kind: str) -> bool:
        """Draw the next Bernoulli decision for ``kind``."""
        rate = self.policy.rate(kind)
        n = self._draws[kind]
        self._draws[kind] = n + 1
        if rate <= 0.0:
            return False
        kind_id = FAULT_KINDS.index(kind)
        fire = np.random.default_rng((self.seed, kind_id, n)).random() < rate
        if fire:
            self.injected[kind] += 1
        return bool(fire)

    def should_keyed(self, kind: str, key: object) -> bool:
        """Bernoulli decision for ``kind`` keyed by a stable task id.

        Unlike :meth:`should`, the decision depends only on the injector
        seed, the fault kind and ``key`` — never on how many draws happened
        before, or in which process the draw runs.  Parallel backends use
        this so chaos stays deterministic per task id regardless of
        wall-clock submission order (builtin ``hash`` is avoided: it is
        salted per interpreter, which would desynchronize worker processes).
        """
        rate = self.policy.rate(kind)
        if rate <= 0.0:
            return False
        kind_id = FAULT_KINDS.index(kind)
        digest = hashlib.sha256(repr((kind_id, key)).encode()).digest()
        stream = int.from_bytes(digest[:8], "big")
        fire = np.random.default_rng((self.seed, kind_id, stream)).random() < rate
        if fire:
            self.injected[kind] += 1
        return bool(fire)

    @property
    def total_injected(self) -> int:
        return sum(self.injected.values())


class TaskRuntime:
    """Retrying executor for dataset partition tasks.

    Wraps each task thunk with fault injection (failed and straggler tasks)
    and retry-with-backoff.  A retry re-invokes the thunk, which recomputes
    any uncached parent partitions — re-execution from lineage, exactly how
    Spark recovers a lost task.
    """

    def __init__(
        self,
        retry_policy: RetryPolicy | None = None,
        injector: FaultInjector | None = None,
        clock: SimClock | None = None,
    ) -> None:
        self.retry_policy = retry_policy if retry_policy is not None else RetryPolicy()
        self.injector = injector if injector is not None else FaultInjector.disabled()
        self.clock = clock if clock is not None else SimClock()
        #: (op, partition index) -> attempts used by the last execution.
        self.task_attempts: dict[tuple[str, int], int] = {}
        self.task_retries = 0
        self.slow_tasks = 0

    def run_task(self, op: str, index: int, thunk: Callable[[], object]):
        """Execute one partition task under the chaos + retry regime."""
        key = (op, index)
        attempts = 0

        def attempt():
            nonlocal attempts
            attempts += 1
            if self.injector.should("task_slow"):
                self.slow_tasks += 1
                self.clock.sleep(self.injector.policy.slow_task_penalty)
            if self.injector.should("task_failure"):
                raise TransientError(
                    f"injected task failure: {op} partition {index}"
                )
            return thunk()

        def on_retry(retry_index: int, pause: float, exc: BaseException) -> None:
            self.task_retries += 1

        try:
            return self.retry_policy.call(
                attempt, clock=self.clock, on_retry=on_retry
            )
        finally:
            self.task_attempts[key] = attempts

    def run_task_keyed(self, op: str, index: int, thunk: Callable[[], object]):
        """Like :meth:`run_task`, but fault draws are keyed by task id.

        Used by the parallel fan-out path: the ``n``-th attempt of task
        ``(op, index)`` draws its faults from a stream seeded by that triple
        (:meth:`FaultInjector.should_keyed`), so the decision is identical
        whether the task runs first or last, serially or in a worker
        process.  Counter-based draws (:meth:`run_task`) stay the behaviour
        of the lazy single-partition path.
        """
        key = (op, index)
        attempts = 0

        def attempt():
            nonlocal attempts
            attempts += 1
            if self.injector.should_keyed("task_slow", (op, index, attempts)):
                self.slow_tasks += 1
                self.clock.sleep(self.injector.policy.slow_task_penalty)
            if self.injector.should_keyed("task_failure", (op, index, attempts)):
                raise TransientError(
                    f"injected task failure: {op} partition {index}"
                )
            return thunk()

        def on_retry(retry_index: int, pause: float, exc: BaseException) -> None:
            self.task_retries += 1

        try:
            return self.retry_policy.call(
                attempt, clock=self.clock, on_retry=on_retry
            )
        finally:
            self.task_attempts[key] = attempts

    def snapshot(self) -> dict:
        """Accounting counters, for merging across process boundaries."""
        return {
            "task_attempts": dict(self.task_attempts),
            "task_retries": self.task_retries,
            "slow_tasks": self.slow_tasks,
            "injected": dict(self.injector.injected),
            "clock": self.clock.now,
        }

    def absorb_counters(self, counters: dict) -> None:
        """Fold a worker runtime's accounting back into this runtime.

        ``counters`` is the :meth:`snapshot` of a *fresh* runtime that
        executed tasks on a worker (in another process, or in-process on
        the pickling-fallback path); all its counts are deltas, so shipping
        tasks to N workers never double-counts.
        """
        self.task_attempts.update(counters["task_attempts"])
        self.task_retries += counters["task_retries"]
        self.slow_tasks += counters["slow_tasks"]
        for kind, count in counters["injected"].items():
            self.injector.injected[kind] += count
        if counters["clock"] > 0:
            self.clock.sleep(counters["clock"])


@dataclass(frozen=True)
class ResilienceEvent:
    """One thing the runtime absorbed instead of crashing."""

    kind: str
    subject: str
    detail: str = ""


@dataclass
class PipelineHealthReport:
    """Structured record of a (possibly degraded) pipeline run.

    Produced by the wide-table builder / pipeline, consumed by
    :mod:`repro.core.monitoring` and surfaced on the predictor, so a
    campaign consumer can tell a full-fidelity churn list from one built
    while sources were down.
    """

    families_used: list[str] = field(default_factory=list)
    families_dropped: dict[str, str] = field(default_factory=dict)
    retries: int = 0
    task_retries: int = 0
    repaired_replicas: int = 0
    corrupt_replicas_detected: int = 0
    re_replicated_blocks: int = 0
    quarantined_rows: int = 0
    faults_injected: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    events: list[ResilienceEvent] = field(default_factory=list)
    #: Aggregated span timings (``{span name: {count, wall_s, cpu_s}}``)
    #: absorbed from the active tracer, so a health report answers not just
    #: "what degraded" but "where the time went" (see :meth:`absorb_trace`).
    span_timings: dict[str, dict] = field(default_factory=dict)
    #: Watchtower alerts fired for this window
    #: (:class:`~repro.core.watchtower.Alert`), folded in by
    #: :meth:`absorb_alerts` so drift and degradation read from one report.
    alerts: list = field(default_factory=list)

    def record(self, kind: str, subject: str, detail: str = "") -> None:
        self.events.append(ResilienceEvent(kind, subject, detail))

    def drop_family(self, family: str, reason: str) -> None:
        self.families_dropped[family] = reason
        self.record("family_dropped", family, reason)

    @property
    def degraded(self) -> bool:
        return bool(self.families_dropped)

    @property
    def status(self) -> str:
        """``"full"`` or ``"degraded(F2,F5)"`` — the predictor annotation."""
        if not self.degraded:
            return "full"
        return f"degraded({','.join(sorted(self.families_dropped))})"

    def absorb_storage(self, health: "object") -> None:
        """Fold a block store's :class:`StorageHealth` counters in."""
        self.retries += health.read_retries
        self.repaired_replicas += health.replicas_repaired
        self.corrupt_replicas_detected += health.corrupt_replicas_detected
        self.re_replicated_blocks += health.replicas_recreated
        self.faults_injected += health.transient_read_failures
        self.cache_hits += getattr(health, "cache_hits", 0)
        self.cache_misses += getattr(health, "cache_misses", 0)

    def absorb_runtime(self, runtime: TaskRuntime) -> None:
        self.task_retries += runtime.task_retries
        self.faults_injected += runtime.injector.total_injected

    def absorb_alerts(self, alerts: Iterable) -> None:
        """Fold fired watchtower alerts into this window's report.

        Each alert also lands as an event, so the chronological event log
        and the alert list stay consistent.
        """
        for alert in alerts:
            self.alerts.append(alert)
            self.record(f"alert_{alert.severity}", alert.rule, alert.message)

    @property
    def paged(self) -> bool:
        """Whether any ``page``-tier alert fired for this window."""
        return any(a.severity == "page" for a in self.alerts)

    def absorb_trace(self, tracer) -> None:
        """Fold a tracer's per-span-name aggregate timings into the report.

        ``tracer`` is a :class:`~repro.dataplat.observability.Tracer` (or
        anything with its ``summary()`` shape); repeated absorption sums.
        """
        for name, agg in tracer.summary().items():
            slot = self.span_timings.setdefault(
                name, {"count": 0, "wall_s": 0.0, "cpu_s": 0.0}
            )
            slot["count"] += agg["count"]
            slot["wall_s"] += agg["wall_s"]
            slot["cpu_s"] += agg["cpu_s"]

    def render(self) -> str:
        lines = [
            f"Pipeline health: {self.status}",
            f"  families used: {', '.join(self.families_used) or '-'}",
        ]
        for family, reason in sorted(self.families_dropped.items()):
            lines.append(f"  dropped {family}: {reason}")
        lines.append(
            f"  retries: {self.retries} read / {self.task_retries} task"
        )
        lines.append(
            f"  storage: {self.corrupt_replicas_detected} corrupt replicas "
            f"detected, {self.repaired_replicas} repaired, "
            f"{self.re_replicated_blocks} re-replicated"
        )
        lines.append(f"  quarantined rows: {self.quarantined_rows}")
        lines.append(f"  faults injected: {self.faults_injected}")
        reads = self.cache_hits + self.cache_misses
        if reads:
            lines.append(
                f"  table cache: {self.cache_hits}/{reads} hits "
                f"({self.cache_hits / reads:.0%})"
            )
        if self.alerts:
            lines.append(f"  alerts: {len(self.alerts)}")
            for alert in self.alerts:
                lines.append(
                    f"    [{alert.severity.upper():<4}] {alert.rule}: "
                    f"{alert.message}"
                )
        if self.span_timings:
            top = sorted(
                self.span_timings.items(),
                key=lambda kv: kv[1]["wall_s"],
                reverse=True,
            )[:5]
            lines.append("  slowest stages:")
            for name, agg in top:
                lines.append(
                    f"    {name}: {agg['wall_s']:.3f}s wall over "
                    f"{agg['count']} span(s)"
                )
        return "\n".join(lines)


class CatalogTableSource:
    """Serve a month's raw tables from the catalog instead of the world.

    ``TelcoWorld.load_catalog`` writes every monthly table into a warehouse
    database partitioned by ``month=t``; this source reads them back (with
    retries — catalog reads go through the block store, whose transient
    faults surface here) so the feature pipeline exercises the full storage
    path.  A table whose partition is missing (feed down, dropped by ETL
    quarantine, deliberately deleted by a chaos test) is simply absent from
    the returned dict, which downstream degrades on.
    """

    def __init__(
        self,
        catalog,
        database: str = "telco",
        retry_policy: RetryPolicy | None = None,
        clock: SimClock | None = None,
        health: PipelineHealthReport | None = None,
    ) -> None:
        self._catalog = catalog
        self._database = database
        self._retry = retry_policy if retry_policy is not None else RetryPolicy()
        self._clock = clock if clock is not None else SimClock()
        self.health = health if health is not None else PipelineHealthReport()

    def tables_for(self, month: int) -> dict:
        """All tables that have a ``month=<t>`` partition, loaded."""
        partition = f"month={month}"
        out = {}
        for name in self._catalog.tables(self._database):
            if partition not in self._catalog.partitions(name, self._database):
                continue

            def load(name=name):
                return self._catalog.load(
                    name, database=self._database, partition=partition
                )

            def on_retry(retry_index, pause, exc, name=name):
                self.health.retries += 1
                self.health.record("read_retry", name, str(exc))

            try:
                out[name] = self._retry.call(
                    load, clock=self._clock, on_retry=on_retry
                )
            except (TransientError, StorageError) as exc:
                # The table is unreadable even after retries: treat it as a
                # down feed and let the feature layer degrade.
                self.health.record("table_unavailable", name, str(exc))
        return out
