"""Telemetry warehouse: durable, SQL-queryable observability history.

The paper's deployment retrains monthly and serves campaign lists
continuously (§6), so the system's real operating mode is *between*
retrains — exactly where spans, metrics and drift reports used to be
ephemeral in-process objects that vanished with the run.  This module sinks
every run's observability output into append-only catalog tables under the
``__telemetry`` database, so the repo's own SQL engine can answer operator
questions longitudinally ("p95 window build time over the last 6 windows",
"which feature family's PSI crossed 0.25 first"):

* ``__telemetry.spans``   — flattened :class:`~.observability.Span` trees
  (one row per span, pre-order ids, parent links, JSON tags/counters);
* ``__telemetry.metrics`` — :class:`~.observability.MetricsRegistry`
  snapshots: counters and histogram buckets as *per-window deltas* (both
  are monotone, so subtraction is exact), gauges as point-in-time values;
* ``__telemetry.drift``   — :class:`~repro.core.monitoring.DriftFinding`
  rows (feature and score PSI with the tier label);
* ``__telemetry.health``  — one
  :class:`~.resilience.PipelineHealthReport` summary row per window;
* ``__telemetry.alerts``  — tiered alerts fired by
  :class:`~repro.core.watchtower.Watchtower` rules.

Every row is keyed by ``(run_id, window, git_sha)``.  Each
``(table, run, window)`` write lands in its own catalog partition, which
makes retention compaction a partition drop (:meth:`TelemetryWarehouse.
compact`) rather than a rewrite.  Run ids should sort chronologically
(zero-padded sequence numbers or ISO timestamps) — retention keeps the
lexicographically largest ids.

:class:`TelemetrySink` is the per-run recording facade the pipeline holds:
it remembers the previous metrics snapshot (for exact deltas) and suspends
tracing while it writes, so sinking telemetry never traces itself.
"""

from __future__ import annotations

import json
import subprocess
from collections.abc import Sequence
from pathlib import Path

from ..errors import DataPlatformError
from . import observability
from .catalog import Catalog
from .observability import MetricsRegistry, Span
from .schema import Schema
from .sql import SQLEngine
from .table import Table

__all__ = [
    "TELEMETRY_DATABASE",
    "TELEMETRY_SCHEMAS",
    "TelemetryWarehouse",
    "TelemetrySink",
    "current_git_sha",
]

#: All telemetry tables live in this catalog database.
TELEMETRY_DATABASE = "__telemetry"

#: Stable row layouts, one per telemetry table.  Changing a schema is a
#: breaking change for every stored run — append new tables instead.
TELEMETRY_SCHEMAS: dict[str, Schema] = {
    "spans": Schema.of(
        run_id="string",
        window="int",
        git_sha="string",
        span_id="int",
        parent_id="int",
        depth="int",
        name="string",
        status="string",
        wall_s="float",
        cpu_s="float",
        tags="string",
        counters="string",
    ),
    "metrics": Schema.of(
        run_id="string",
        window="int",
        git_sha="string",
        kind="string",
        name="string",
        bucket="string",
        value="float",
    ),
    "drift": Schema.of(
        run_id="string",
        window="int",
        git_sha="string",
        metric="string",
        name="string",
        psi="float",
        level="string",
        reference="string",
        current="string",
    ),
    "health": Schema.of(
        run_id="string",
        window="int",
        git_sha="string",
        status="string",
        degraded="bool",
        families_used="string",
        families_dropped="string",
        read_retries="int",
        task_retries="int",
        repaired_replicas="int",
        quarantined_rows="int",
        faults_injected="int",
        cache_hits="int",
        cache_misses="int",
    ),
    "alerts": Schema.of(
        run_id="string",
        window="int",
        git_sha="string",
        rule="string",
        severity="string",
        kind="string",
        value="float",
        threshold="float",
        message="string",
    ),
    "query_profiles": Schema.of(
        run_id="string",
        window="int",
        git_sha="string",
        fingerprint="string",
        profile_id="int",
        sql="string",
        op_id="int",
        parent_id="int",
        depth="int",
        operator="string",
        label="string",
        rel="string",
        shape="string",
        est_rows="float",
        est_rows_raw="float",
        actual_rows="int",
        q_error="float",
        wall_s="float",
        cpu_s="float",
        bytes_decoded="int",
        cache_hits="int",
        cache_misses="int",
        chunks_skipped="int",
        partitions_pruned="int",
    ),
}


def current_git_sha(anchor: Path | None = None) -> str:
    """Short commit hash of the working tree (``unknown`` outside git)."""
    try:
        proc = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            cwd=anchor if anchor is not None else Path(__file__).resolve().parent,
            capture_output=True,
            text=True,
            timeout=10,
        )
    except (OSError, subprocess.SubprocessError):
        return "unknown"
    return proc.stdout.strip() if proc.returncode == 0 else "unknown"


def _json_compact(data: dict) -> str:
    """Deterministic single-line JSON (sorted keys, no whitespace)."""
    return json.dumps(data, sort_keys=True, separators=(",", ":"), default=str)


class TelemetryWarehouse:
    """Append-only observability tables over a catalog, plus SQL access.

    Parameters
    ----------
    catalog:
        Backing catalog; a private one is created if omitted.  Sharing the
        pipeline's catalog is fine — telemetry lives in its own database.
    git_sha:
        Stamped onto every row; defaults to the working tree's short hash.
    retention_runs:
        When set, every record call compacts the warehouse down to the
        newest ``retention_runs`` run ids (by lexicographic order).
    scan_pruning:
        Forwarded to the SQL engine.  Telemetry tables partition per
        (run, window), so watchtower queries filtering on ``window`` or
        ``run_id`` skip every other partition via zone maps.
    """

    def __init__(
        self,
        catalog: Catalog | None = None,
        git_sha: str | None = None,
        retention_runs: int | None = None,
        scan_pruning: bool = True,
    ) -> None:
        if retention_runs is not None and retention_runs < 1:
            raise DataPlatformError(
                f"retention_runs must be >= 1, got {retention_runs}"
            )
        self._catalog = catalog if catalog is not None else Catalog()
        self._catalog.create_database(TELEMETRY_DATABASE)
        self._engine = SQLEngine(
            self._catalog,
            database=TELEMETRY_DATABASE,
            scan_pruning=scan_pruning,
        )
        self.git_sha = git_sha if git_sha is not None else current_git_sha()
        self.retention_runs = retention_runs
        # Monotone discriminator for query profiles: two executions of
        # the same statement in one (run, window) must not interleave.
        self._profile_seq = 0

    @property
    def catalog(self) -> Catalog:
        return self._catalog

    @property
    def engine(self) -> SQLEngine:
        """SQL engine bound to the ``__telemetry`` database."""
        return self._engine

    def query(self, sql: str) -> Table:
        """Run SQL against the telemetry tables.

        Unqualified names resolve inside ``__telemetry``; the qualified
        ``__telemetry.spans`` form works from any engine over this catalog.
        """
        return self._engine.query(sql)

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------

    def record_spans(
        self, run_id: str, window: int, roots: Sequence[Span]
    ) -> int:
        """Flatten finished span trees into ``__telemetry.spans`` rows.

        Span ids are depth-first pre-order indices within the window
        (roots' parent_id is −1), so the tree is reconstructable and
        self-time is computable with one join.  Returns the row count.
        """
        rows: list[tuple] = []

        def visit(span: Span, parent_id: int, depth: int) -> None:
            span_id = len(rows)
            rows.append(
                (
                    run_id,
                    window,
                    self.git_sha,
                    span_id,
                    parent_id,
                    depth,
                    span.name,
                    span.status,
                    span.wall_s,
                    span.cpu_s,
                    _json_compact(span.tags),
                    _json_compact(span.counters),
                )
            )
            for child in span.children:
                visit(child, span_id, depth + 1)

        for root in roots:
            visit(root, -1, 0)
        self._append("spans", run_id, window, rows)
        return len(rows)

    def record_metrics(
        self, run_id: str, window: int, snapshot: dict
    ) -> int:
        """Sink one :meth:`MetricsRegistry.snapshot`-shaped dict.

        The caller decides the snapshot's scope (cumulative or per-window
        delta — :class:`TelemetrySink` records exact deltas).  Histograms
        land as one ``hist_bucket`` row per bucket (``bucket`` is the
        upper bound, ``+inf`` for the overflow bucket) plus ``hist_count``
        and ``hist_sum`` rows.
        """
        rows: list[tuple] = []

        def add(kind: str, name: str, bucket: str, value: float) -> None:
            rows.append(
                (run_id, window, self.git_sha, kind, name, bucket, float(value))
            )

        for name, value in snapshot.get("counters", {}).items():
            add("counter", name, "", value)
        for name, value in snapshot.get("gauges", {}).items():
            add("gauge", name, "", value)
        for name, hist in snapshot.get("histograms", {}).items():
            bounds = list(hist["boundaries"]) + ["+inf"]
            for bound, count in zip(bounds, hist["counts"]):
                add("hist_bucket", name, str(bound), count)
            add("hist_count", name, "", hist["total"])
            add("hist_sum", name, "", hist["sum"])
        self._append("metrics", run_id, window, rows)
        return len(rows)

    def record_query_profile(
        self, run_id: str, window: int, profile
    ) -> int:
        """Sink one :class:`~.sql.profile.QueryProfile`.

        One row per executed operator, keyed by
        ``(run_id, profile_id, op_id)`` within the window — the
        ``EXPLAIN ANALYZE`` record the feedback store and
        ``scripts/trace_report.py --analyze`` read back.  ``profile_id``
        is a warehouse-monotone execution counter: repeated runs of the
        same statement (same fingerprint) in one window stay separate
        profiles instead of interleaving their operator rows.
        """
        profile_id = self._profile_seq
        self._profile_seq += 1
        rows = [
            (
                run_id,
                window,
                self.git_sha,
                profile.fingerprint,
                profile_id,
                profile.sql,
                op.op_id,
                op.parent_id,
                op.depth,
                op.operator,
                op.label,
                op.rel,
                op.shape,
                float(op.est_rows),
                float(op.est_rows_raw),
                op.actual_rows,
                float(op.q_error),
                float(op.wall_s),
                float(op.cpu_s),
                op.bytes_decoded,
                op.cache_hits,
                op.cache_misses,
                op.chunks_skipped,
                op.partitions_pruned,
            )
            for op in profile.operators
        ]
        self._append("query_profiles", run_id, window, rows)
        return len(rows)

    def record_recovery(self, run_id: str, window: int, report) -> int:
        """Sink a :class:`~.journal.RecoveryReport` as recovery counters.

        One ``recovery.*`` counter row per non-zero field (plus an
        always-written ``recovery.runs`` marker), so watchtower threshold
        rules can page on *any* unexpected replay/rollback in a scenario
        run without a schema of their own.
        """
        counters = {"recovery.runs": 1.0}
        counters.update(
            {
                name: float(value)
                for name, value in report.counters().items()
                if value
            }
        )
        return self.record_metrics(run_id, window, {"counters": counters})

    def record_drift(self, run_id: str, window: int, report) -> int:
        """Sink a :class:`~repro.core.monitoring.MonitoringReport`.

        One row per feature finding, one for the score finding (when
        present); the realized churn rates additionally land in the
        metrics table as ``monitor.churn_rate_{reference,current}`` gauges
        so delta/threshold alert rules can watch them.
        """
        rows = [
            (
                run_id,
                window,
                self.git_sha,
                "feature",
                finding.name,
                float(finding.psi),
                finding.level,
                report.reference_label,
                report.current_label,
            )
            for finding in report.feature_findings
        ]
        if report.score_finding is not None:
            rows.append(
                (
                    run_id,
                    window,
                    self.git_sha,
                    "score",
                    report.score_finding.name,
                    float(report.score_finding.psi),
                    report.score_finding.level,
                    report.reference_label,
                    report.current_label,
                )
            )
        self._append("drift", run_id, window, rows)
        self.record_metrics(
            run_id,
            window,
            {
                "gauges": {
                    "monitor.churn_rate_reference": report.reference_churn_rate,
                    "monitor.churn_rate_current": report.current_churn_rate,
                }
            },
        )
        return len(rows)

    def record_health(self, run_id: str, window: int, health) -> int:
        """Sink one :class:`~.resilience.PipelineHealthReport` summary row."""
        rows = [
            (
                run_id,
                window,
                self.git_sha,
                health.status,
                health.degraded,
                ",".join(health.families_used),
                ",".join(sorted(health.families_dropped)),
                health.retries,
                health.task_retries,
                health.repaired_replicas,
                health.quarantined_rows,
                health.faults_injected,
                health.cache_hits,
                health.cache_misses,
            )
        ]
        self._append("health", run_id, window, rows)
        return len(rows)

    def record_alerts(self, run_id: str, window: int, alerts: Sequence) -> int:
        """Sink fired :class:`~repro.core.watchtower.Alert` rows."""
        rows = [
            (
                run_id,
                window,
                self.git_sha,
                alert.rule,
                alert.severity,
                alert.kind,
                float(alert.value),
                float(alert.threshold),
                alert.message,
            )
            for alert in alerts
        ]
        self._append("alerts", run_id, window, rows)
        return len(rows)

    # ------------------------------------------------------------------
    # History inspection and retention
    # ------------------------------------------------------------------

    def tables(self) -> list[str]:
        """Telemetry tables with at least one stored partition."""
        return self._catalog.tables(TELEMETRY_DATABASE)

    def runs(self) -> list[str]:
        """Distinct run ids across all telemetry tables, sorted."""
        out: set[str] = set()
        for name in self.tables():
            for partition in self._catalog.partitions(name, TELEMETRY_DATABASE):
                out.add(self._parse_partition(partition)[0])
        return sorted(out)

    def windows(self, run_id: str) -> list[int]:
        """Windows recorded for one run, sorted ascending."""
        out: set[int] = set()
        for name in self.tables():
            for partition in self._catalog.partitions(name, TELEMETRY_DATABASE):
                run, window = self._parse_partition(partition)
                if run == run_id:
                    out.add(window)
        return sorted(out)

    def compact(self, keep_runs: int) -> list[str]:
        """Retention: drop every run except the newest ``keep_runs``.

        "Newest" is lexicographic run-id order (ids are expected to sort
        chronologically).  Dropping is a per-partition catalog delete — no
        surviving row is rewritten.  Returns the dropped run ids.
        """
        if keep_runs < 1:
            raise DataPlatformError(f"keep_runs must be >= 1, got {keep_runs}")
        doomed = self.runs()[:-keep_runs]
        for run_id in doomed:
            for name in self.tables():
                for partition in list(
                    self._catalog.partitions(name, TELEMETRY_DATABASE)
                ):
                    if self._parse_partition(partition)[0] == run_id:
                        self._catalog.drop_partition(
                            name, partition, database=TELEMETRY_DATABASE
                        )
        return doomed

    # ------------------------------------------------------------------
    # Portability (the dashboard script reads these dumps)
    # ------------------------------------------------------------------

    def dump(self, path: str | Path) -> int:
        """Write the whole warehouse as one JSON file; returns row count.

        The block store is in-memory, so this is how telemetry history
        leaves the process (``scripts/obs_dashboard.py`` renders dumps).
        """
        payload: dict[str, list] = {"version": 1, "tables": {}}
        total = 0
        for name in self.tables():
            table = self._catalog.load(name, database=TELEMETRY_DATABASE)
            payload["tables"][name] = {
                "columns": list(table.schema.names),
                "rows": [list(row) for row in table.rows()],
            }
            total += table.num_rows
        Path(path).write_text(json.dumps(payload, indent=1, default=_jsonify))
        return total

    @classmethod
    def load_dump(
        cls, path: str | Path, catalog: Catalog | None = None
    ) -> "TelemetryWarehouse":
        """Rebuild a queryable warehouse from a :meth:`dump` file."""
        payload = json.loads(Path(path).read_text())
        warehouse = cls(catalog=catalog, git_sha="unknown")
        for name, data in payload["tables"].items():
            schema = TELEMETRY_SCHEMAS.get(name)
            if schema is None or list(schema.names) != data["columns"]:
                raise DataPlatformError(
                    f"dump table {name!r} does not match the current "
                    f"telemetry schema"
                )
            rows = [tuple(row) for row in data["rows"]]
            # Regroup by (run, window) so partition-based retention still
            # works on a reloaded warehouse.
            by_key: dict[tuple[str, int], list[tuple]] = {}
            run_col = data["columns"].index("run_id")
            window_col = data["columns"].index("window")
            for row in rows:
                by_key.setdefault(
                    (row[run_col], int(row[window_col])), []
                ).append(row)
            for (run_id, window), group in sorted(by_key.items()):
                warehouse._append(name, run_id, window, group)
            if name == "query_profiles" and rows:
                seq_col = data["columns"].index("profile_id")
                warehouse._profile_seq = (
                    max(int(row[seq_col]) for row in rows) + 1
                )
        return warehouse

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _append(
        self, name: str, run_id: str, window: int, rows: list[tuple]
    ) -> None:
        if not rows:
            return
        _validate_run_id(run_id)
        schema = TELEMETRY_SCHEMAS[name]
        partition = f"run={run_id}/window={window}"
        if name in self.tables() and partition in self._catalog.partitions(
            name, TELEMETRY_DATABASE
        ):
            # Append within the window: catalog saves overwrite a
            # partition, so fold the existing rows back in first.
            existing = self._catalog.load(
                name, database=TELEMETRY_DATABASE, partition=partition
            )
            rows = list(existing.rows()) + rows
        table = Table.from_rows(schema, rows)
        self._catalog.save(
            table,
            name,
            database=TELEMETRY_DATABASE,
            partition=partition,
        )
        if self.retention_runs is not None:
            self.compact(self.retention_runs)

    @staticmethod
    def _parse_partition(partition: str) -> tuple[str, int]:
        run_part, _, window_part = partition.partition("/")
        return run_part.removeprefix("run="), int(
            window_part.removeprefix("window=")
        )


def _validate_run_id(run_id: str) -> None:
    if "/" in run_id or "=" in run_id:
        raise DataPlatformError(
            f"run id must not contain '/' or '=': {run_id!r}"
        )


def _jsonify(value):
    """JSON fallback for numpy scalars inside dump rows."""
    if hasattr(value, "item"):
        return value.item()
    return str(value)


class TelemetrySink:
    """Per-run recording facade: one run id, exact metric deltas.

    The pipeline holds one sink per run and calls :meth:`record_window`
    after each window.  The sink

    * snapshots the metrics registry and writes the *delta* against the
      previous window (counters and histogram bucket counts are monotone,
      so the subtraction is exact; gauges are written as-is), making every
      window's metric rows independent of run length;
    * suspends the active tracer while writing, so sinking telemetry never
      shows up in the telemetry it sinks.
    """

    def __init__(
        self,
        warehouse: TelemetryWarehouse,
        run_id: str,
        metrics: MetricsRegistry | None = None,
    ) -> None:
        _validate_run_id(run_id)
        self.warehouse = warehouse
        self.run_id = run_id
        self._metrics = metrics
        self._last_snapshot: dict | None = None

    def _registry(self) -> MetricsRegistry:
        return (
            self._metrics
            if self._metrics is not None
            else observability.get_metrics()
        )

    def record_window(
        self,
        window: int,
        *,
        spans: Sequence[Span] = (),
        monitoring=None,
        health=None,
    ) -> None:
        """Sink one window's spans, metric deltas, drift and health."""
        previous_tracer = observability.set_tracer(None)
        try:
            if spans:
                self.warehouse.record_spans(self.run_id, window, spans)
            snapshot = self._registry().snapshot()
            delta = _snapshot_delta(self._last_snapshot, snapshot)
            self._last_snapshot = snapshot
            self.warehouse.record_metrics(self.run_id, window, delta)
            if monitoring is not None:
                self.warehouse.record_drift(self.run_id, window, monitoring)
            if health is not None:
                self.warehouse.record_health(self.run_id, window, health)
        finally:
            observability.set_tracer(previous_tracer)

    def record_query_profile(self, profile, window: int = 0) -> None:
        """Sink one query profile (usable as an engine ``profile_sink``).

        The default window 0 suits ad-hoc profiling; pipelines recording
        per window can pass their window index explicitly via
        ``functools.partial`` or a small lambda.
        """
        previous_tracer = observability.set_tracer(None)
        try:
            self.warehouse.record_query_profile(self.run_id, window, profile)
        finally:
            observability.set_tracer(previous_tracer)

    def record_gauges(self, window: int, gauges: dict) -> None:
        """Sink point-in-time gauge values without touching delta state.

        Used by :meth:`~repro.serve.service.ScoringService.attach_telemetry`
        for periodic SLO flushes: gauges land in ``__telemetry.metrics``
        like any registry snapshot, but the sink's counter/histogram delta
        baseline is left alone so the next :meth:`record_window` stays
        exact.
        """
        previous_tracer = observability.set_tracer(None)
        try:
            self.warehouse.record_metrics(
                self.run_id, window, {"gauges": dict(gauges)}
            )
        finally:
            observability.set_tracer(previous_tracer)


def _snapshot_delta(previous: dict | None, current: dict) -> dict:
    """Per-window delta between two cumulative registry snapshots."""
    if previous is None:
        return current
    counters = {
        name: value - previous.get("counters", {}).get(name, 0.0)
        for name, value in current.get("counters", {}).items()
    }
    histograms = {}
    for name, hist in current.get("histograms", {}).items():
        prior = previous.get("histograms", {}).get(name)
        if prior is None or prior["boundaries"] != hist["boundaries"]:
            histograms[name] = hist
            continue
        counts = [a - b for a, b in zip(hist["counts"], prior["counts"])]
        total = hist["total"] - prior["total"]
        histograms[name] = {
            "boundaries": hist["boundaries"],
            "counts": counts,
            "total": total,
            "sum": hist["sum"] - prior["sum"],
            "mean": (hist["sum"] - prior["sum"]) / total if total else 0.0,
            # Window-scoped extrema are unrecoverable from cumulative
            # snapshots; report the run-so-far values.
            "min": hist["min"],
            "max": hist["max"],
        }
    return {
        "counters": counters,
        "gauges": dict(current.get("gauges", {})),
        "histograms": histograms,
    }
