"""Partitioned datasets with lineage — a mini-RDD.

The paper's feature pipeline is "hand coded in Spark"; a :class:`Dataset`
reproduces the programming model: an immutable collection of partitions (each
a :class:`~.table.Table`), transformed lazily through ``map_partitions`` /
``filter`` / ``union`` / ``repartition_by_key`` (a shuffle), and materialized
with actions (``collect``, ``count``, ``reduce``).  Each dataset records the
operation that produced it so ``lineage()`` can be inspected, mirroring RDD
lineage-based recovery.
"""

from __future__ import annotations

from collections.abc import Callable, Sequence

import numpy as np

from ..errors import ExecutionError
from .resilience import TaskRuntime
from .schema import Schema
from .table import Table

#: A transformation applied independently to each partition.
PartitionFn = Callable[[Table], Table]


class Dataset:
    """An immutable, partitioned, lazily-evaluated dataset of table chunks.

    Construction is cheap: transformations build a plan (a chain of parent
    datasets plus per-partition thunks); partitions are computed on first
    action and cached, like Spark's ``persist``.

    An optional :class:`~repro.dataplat.resilience.TaskRuntime` (inherited
    by every derived dataset) executes partition tasks under fault
    injection and retry; a retried task re-invokes its thunk, recomputing
    uncached ancestors — recovery by lineage, as in Spark.
    """

    def __init__(
        self,
        schema: Schema,
        partition_thunks: Sequence[Callable[[], Table]],
        op: str,
        parents: Sequence["Dataset"] = (),
        runtime: TaskRuntime | None = None,
    ) -> None:
        self._schema = schema
        self._thunks = list(partition_thunks)
        self._cache: list[Table | None] = [None] * len(partition_thunks)
        self._op = op
        self._parents = tuple(parents)
        if runtime is None:
            for parent in self._parents:
                if parent._runtime is not None:
                    runtime = parent._runtime
                    break
        self._runtime = runtime

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    @classmethod
    def from_table(
        cls,
        table: Table,
        num_partitions: int = 4,
        runtime: TaskRuntime | None = None,
    ) -> "Dataset":
        """Split a table into ``num_partitions`` row ranges."""
        if num_partitions < 1:
            raise ExecutionError(f"num_partitions must be >= 1, got {num_partitions}")
        bounds = np.linspace(0, table.num_rows, num_partitions + 1).astype(int)
        thunks = []
        for lo, hi in zip(bounds[:-1], bounds[1:]):
            indices = np.arange(lo, hi)
            thunks.append(lambda t=table, ix=indices: t.take(ix))
        return cls(
            table.schema,
            thunks,
            op=f"from_table[{num_partitions}]",
            runtime=runtime,
        )

    @classmethod
    def from_partitions(
        cls,
        partitions: Sequence[Table],
        runtime: TaskRuntime | None = None,
    ) -> "Dataset":
        """Wrap pre-built tables (all must share a schema)."""
        if not partitions:
            raise ExecutionError("need at least one partition")
        schema = partitions[0].schema
        for p in partitions[1:]:
            if p.schema != schema:
                raise ExecutionError("partitions have differing schemas")
        thunks = [lambda t=p: t for p in partitions]
        return cls(
            schema,
            thunks,
            op=f"from_partitions[{len(partitions)}]",
            runtime=runtime,
        )

    # ------------------------------------------------------------------
    # Properties
    # ------------------------------------------------------------------

    @property
    def schema(self) -> Schema:
        return self._schema

    @property
    def num_partitions(self) -> int:
        return len(self._thunks)

    @property
    def runtime(self) -> TaskRuntime | None:
        """The task runtime partition tasks execute under (if any)."""
        return self._runtime

    def lineage(self) -> list[str]:
        """Operations from root to this dataset (one entry per ancestor)."""
        chain: list[str] = []
        node: Dataset | None = self
        seen = set()
        stack = [self]
        order: list[Dataset] = []
        while stack:
            node = stack.pop()
            if id(node) in seen:
                continue
            seen.add(id(node))
            order.append(node)
            stack.extend(node._parents)
        for ds in reversed(order):
            chain.append(ds._op)
        return chain

    # ------------------------------------------------------------------
    # Transformations (lazy)
    # ------------------------------------------------------------------

    def map_partitions(self, fn: PartitionFn, schema: Schema, op: str = "map") -> "Dataset":
        """Apply ``fn`` to every partition, producing tables with ``schema``."""
        thunks = [
            lambda i=i: _check_schema(fn(self._partition(i)), schema, op)
            for i in range(self.num_partitions)
        ]
        return Dataset(schema, thunks, op=op, parents=[self])

    def filter(self, predicate: Callable[[Table], np.ndarray]) -> "Dataset":
        """Keep rows whose vectorized ``predicate`` is true."""
        return self.map_partitions(
            lambda t: t.filter(predicate), self._schema, op="filter"
        )

    def select(self, names: Sequence[str]) -> "Dataset":
        """Project every partition onto ``names``."""
        schema = self._schema.select(names)
        return self.map_partitions(lambda t: t.select(names), schema, op="select")

    def union(self, other: "Dataset") -> "Dataset":
        """Concatenate partitions of two schema-compatible datasets."""
        if other.schema != self._schema:
            raise ExecutionError("union requires identical schemas")
        thunks = [
            lambda i=i: self._partition(i) for i in range(self.num_partitions)
        ] + [
            lambda i=i: other._partition(i) for i in range(other.num_partitions)
        ]
        return Dataset(self._schema, thunks, op="union", parents=[self, other])

    def repartition_by_key(self, key: str, num_partitions: int) -> "Dataset":
        """Shuffle: co-locate rows with equal ``key`` hash in one partition.

        This is the platform's shuffle primitive; joins and grouped
        aggregations over datasets build on it.
        """
        if num_partitions < 1:
            raise ExecutionError(f"num_partitions must be >= 1, got {num_partitions}")

        def build(target: int) -> Table:
            pieces = []
            for i in range(self.num_partitions):
                part = self._partition(i)
                hashes = _bucket_hash(part.column(key)) % num_partitions
                pieces.append(part.mask(hashes == target))
            out = pieces[0]
            for piece in pieces[1:]:
                out = out.concat_rows(piece)
            return out

        thunks = [lambda t=t: build(t) for t in range(num_partitions)]
        return Dataset(
            self._schema, thunks, op=f"shuffle[{key}->{num_partitions}]", parents=[self]
        )

    def join(self, other: "Dataset", on: str, num_partitions: int = 4) -> "Dataset":
        """Shuffle equi-join on a single key column."""
        left = self.repartition_by_key(on, num_partitions)
        right = other.repartition_by_key(on, num_partitions)

        def build(i: int) -> Table:
            return left._partition(i).join(right._partition(i), on=[on])

        probe = Table.empty(self._schema).join(
            Table.empty(other.schema), on=[on]
        )
        thunks = [lambda i=i: build(i) for i in range(num_partitions)]
        return Dataset(probe.schema, thunks, op=f"join[{on}]", parents=[left, right])

    def group_by_key(
        self,
        key: str,
        aggregations: dict[str, tuple[str, str]],
        num_partitions: int = 4,
    ) -> "Dataset":
        """Distributed grouped aggregation.

        Shuffles rows by ``key`` so each group lives in one partition, then
        aggregates each partition independently — the map-side/reduce-side
        split of a distributed GROUP BY.  ``aggregations`` follows
        :meth:`Table.group_by`.
        """
        shuffled = self.repartition_by_key(key, num_partitions)
        probe = Table.empty(self._schema).group_by([key], aggregations)

        def build(i: int) -> Table:
            part = shuffled._partition(i)
            if part.num_rows == 0:
                return Table.empty(probe.schema)
            return part.group_by([key], aggregations)

        thunks = [lambda i=i: build(i) for i in range(num_partitions)]
        return Dataset(
            probe.schema, thunks, op=f"group_by[{key}]", parents=[shuffled]
        )

    # ------------------------------------------------------------------
    # Actions (eager)
    # ------------------------------------------------------------------

    def collect(self) -> Table:
        """Materialize the whole dataset as one table."""
        parts = [self._partition(i) for i in range(self.num_partitions)]
        out = parts[0]
        for part in parts[1:]:
            out = out.concat_rows(part)
        return out

    def count(self) -> int:
        """Total number of rows."""
        return sum(self._partition(i).num_rows for i in range(self.num_partitions))

    def reduce_column(self, name: str, fn: str = "sum") -> float:
        """Reduce one numeric column across all partitions.

        ``fn`` is ``sum``, ``min`` or ``max``; partial results per partition
        are combined, as a distributed reduce would.
        """
        partials = []
        for i in range(self.num_partitions):
            col = self._partition(i).column(name)
            if len(col) == 0:
                continue
            col = col.astype(np.float64)
            if fn == "sum":
                partials.append(col.sum())
            elif fn == "min":
                partials.append(col.min())
            elif fn == "max":
                partials.append(col.max())
            else:
                raise ExecutionError(f"unknown reduce function {fn!r}")
        if not partials:
            return 0.0
        if fn == "sum":
            return float(np.sum(partials))
        if fn == "min":
            return float(np.min(partials))
        return float(np.max(partials))

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _partition(self, i: int) -> Table:
        cached = self._cache[i]
        if cached is None:
            if self._runtime is None:
                cached = self._thunks[i]()
            else:
                cached = self._runtime.run_task(self._op, i, self._thunks[i])
            self._cache[i] = cached
        return cached


def _check_schema(table: Table, schema: Schema, op: str) -> Table:
    if table.schema != schema:
        raise ExecutionError(
            f"operation {op!r} produced schema {table.schema!r}, "
            f"declared {schema!r}"
        )
    return table


def _bucket_hash(values: np.ndarray) -> np.ndarray:
    """Stable non-negative bucket hash for a key column."""
    if values.dtype.kind in "iub":
        return np.abs(values.astype(np.int64))
    # String keys: cheap deterministic per-value hash.
    return np.asarray(
        [abs(hash(("ds", v))) for v in values.tolist()], dtype=np.int64
    )
