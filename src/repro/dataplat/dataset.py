"""Partitioned datasets with lineage — a mini-RDD.

The paper's feature pipeline is "hand coded in Spark"; a :class:`Dataset`
reproduces the programming model: an immutable collection of partitions (each
a :class:`~.table.Table`), transformed lazily through ``map_partitions`` /
``filter`` / ``union`` / ``repartition_by_key`` (a shuffle), and materialized
with actions (``collect``, ``count``, ``reduce``).  Each dataset records the
operation that produced it so ``lineage()`` can be inspected, mirroring RDD
lineage-based recovery.

Actions materialize partitions through an
:class:`~repro.dataplat.executor.ExecutorBackend`: the default serial
backend evaluates them lazily in-process exactly as before, while a parallel
backend fans the partition tasks out Spark-style — wide (shuffle) parents
are materialized stage-by-stage first, then the final partitions run
concurrently.  Partition thunks are plain picklable callables, so a process
pool can ship a task (and the lineage it needs) to a worker; tasks that
capture unpicklable user functions transparently fall back to in-process
execution.  Under a :class:`~repro.dataplat.resilience.TaskRuntime`, fan-out
tasks draw their injected faults keyed by ``(op, partition, attempt)`` so
chaos is deterministic per task id, not per submission order.
"""

from __future__ import annotations

from collections.abc import Callable, Sequence

import numpy as np

from ..errors import ExecutionError
from . import observability
from .executor import ExecutorBackend, resolve_backend
from .observability import span
from .resilience import FaultInjector, SimClock, TaskRuntime
from .schema import Schema
from .table import Table

#: A transformation applied independently to each partition.
PartitionFn = Callable[[Table], Table]


class Dataset:
    """An immutable, partitioned, lazily-evaluated dataset of table chunks.

    Construction is cheap: transformations build a plan (a chain of parent
    datasets plus per-partition thunks); partitions are computed on first
    action and cached, like Spark's ``persist``.

    An optional :class:`~repro.dataplat.resilience.TaskRuntime` (inherited
    by every derived dataset) executes partition tasks under fault
    injection and retry; a retried task re-invokes its thunk, recomputing
    uncached ancestors — recovery by lineage, as in Spark.
    """

    def __init__(
        self,
        schema: Schema,
        partition_thunks: Sequence[Callable[[], Table]],
        op: str,
        parents: Sequence["Dataset"] = (),
        runtime: TaskRuntime | None = None,
    ) -> None:
        self._schema = schema
        self._thunks = list(partition_thunks)
        self._cache: list[Table | None] = [None] * len(partition_thunks)
        self._op = op
        self._parents = tuple(parents)
        #: Wide (shuffle) dependency: every parent partition feeds every
        #: child partition, so parents are materialized as a stage first
        #: when fanning out in parallel.
        self._wide = False
        if runtime is None:
            for parent in self._parents:
                if parent._runtime is not None:
                    runtime = parent._runtime
                    break
        self._runtime = runtime

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    @classmethod
    def from_table(
        cls,
        table: Table,
        num_partitions: int = 4,
        runtime: TaskRuntime | None = None,
    ) -> "Dataset":
        """Split a table into ``num_partitions`` row ranges."""
        if num_partitions < 1:
            raise ExecutionError(f"num_partitions must be >= 1, got {num_partitions}")
        bounds = np.linspace(0, table.num_rows, num_partitions + 1).astype(int)
        thunks = [
            _SliceThunk(table, int(lo), int(hi))
            for lo, hi in zip(bounds[:-1], bounds[1:])
        ]
        return cls(
            table.schema,
            thunks,
            op=f"from_table[{num_partitions}]",
            runtime=runtime,
        )

    @classmethod
    def from_partitions(
        cls,
        partitions: Sequence[Table],
        runtime: TaskRuntime | None = None,
    ) -> "Dataset":
        """Wrap pre-built tables (all must share a schema)."""
        if not partitions:
            raise ExecutionError("need at least one partition")
        schema = partitions[0].schema
        for p in partitions[1:]:
            if p.schema != schema:
                raise ExecutionError("partitions have differing schemas")
        thunks = [_ConstThunk(p) for p in partitions]
        return cls(
            schema,
            thunks,
            op=f"from_partitions[{len(partitions)}]",
            runtime=runtime,
        )

    # ------------------------------------------------------------------
    # Properties
    # ------------------------------------------------------------------

    @property
    def schema(self) -> Schema:
        return self._schema

    @property
    def num_partitions(self) -> int:
        return len(self._thunks)

    @property
    def runtime(self) -> TaskRuntime | None:
        """The task runtime partition tasks execute under (if any)."""
        return self._runtime

    def lineage(self) -> list[str]:
        """Operations from root to this dataset (one entry per ancestor)."""
        chain: list[str] = []
        node: Dataset | None = self
        seen = set()
        stack = [self]
        order: list[Dataset] = []
        while stack:
            node = stack.pop()
            if id(node) in seen:
                continue
            seen.add(id(node))
            order.append(node)
            stack.extend(node._parents)
        for ds in reversed(order):
            chain.append(ds._op)
        return chain

    # ------------------------------------------------------------------
    # Transformations (lazy)
    # ------------------------------------------------------------------

    def map_partitions(self, fn: PartitionFn, schema: Schema, op: str = "map") -> "Dataset":
        """Apply ``fn`` to every partition, producing tables with ``schema``."""
        out = Dataset(schema, [], op=op, parents=[self])
        out._thunks = [
            _MapThunk(self, i, fn, schema, op) for i in range(self.num_partitions)
        ]
        out._cache = [None] * self.num_partitions
        return out

    def filter(self, predicate: Callable[[Table], np.ndarray]) -> "Dataset":
        """Keep rows whose vectorized ``predicate`` is true."""
        return self.map_partitions(
            _FilterFn(predicate), self._schema, op="filter"
        )

    def select(self, names: Sequence[str]) -> "Dataset":
        """Project every partition onto ``names``."""
        schema = self._schema.select(names)
        return self.map_partitions(_SelectFn(list(names)), schema, op="select")

    def union(self, other: "Dataset") -> "Dataset":
        """Concatenate partitions of two schema-compatible datasets."""
        if other.schema != self._schema:
            raise ExecutionError("union requires identical schemas")
        out = Dataset(self._schema, [], op="union", parents=[self, other])
        out._thunks = [
            _PartitionThunk(self, i) for i in range(self.num_partitions)
        ] + [_PartitionThunk(other, i) for i in range(other.num_partitions)]
        out._cache = [None] * len(out._thunks)
        return out

    def repartition_by_key(self, key: str, num_partitions: int) -> "Dataset":
        """Shuffle: co-locate rows with equal ``key`` hash in one partition.

        This is the platform's shuffle primitive; joins and grouped
        aggregations over datasets build on it.
        """
        if num_partitions < 1:
            raise ExecutionError(f"num_partitions must be >= 1, got {num_partitions}")
        out = Dataset(
            self._schema, [], op=f"shuffle[{key}->{num_partitions}]", parents=[self]
        )
        out._thunks = [
            _ShuffleThunk(self, key, num_partitions, t)
            for t in range(num_partitions)
        ]
        out._cache = [None] * num_partitions
        out._wide = True
        return out

    def join(self, other: "Dataset", on: str, num_partitions: int = 4) -> "Dataset":
        """Shuffle equi-join on a single key column."""
        left = self.repartition_by_key(on, num_partitions)
        right = other.repartition_by_key(on, num_partitions)

        probe = Table.empty(self._schema).join(
            Table.empty(other.schema), on=[on]
        )
        out = Dataset(probe.schema, [], op=f"join[{on}]", parents=[left, right])
        out._thunks = [
            _JoinThunk(left, right, i, on) for i in range(num_partitions)
        ]
        out._cache = [None] * num_partitions
        return out

    def group_by_key(
        self,
        key: str,
        aggregations: dict[str, tuple[str, str]],
        num_partitions: int = 4,
    ) -> "Dataset":
        """Distributed grouped aggregation.

        Shuffles rows by ``key`` so each group lives in one partition, then
        aggregates each partition independently — the map-side/reduce-side
        split of a distributed GROUP BY.  ``aggregations`` follows
        :meth:`Table.group_by`.
        """
        shuffled = self.repartition_by_key(key, num_partitions)
        probe = Table.empty(self._schema).group_by([key], aggregations)
        out = Dataset(
            probe.schema, [], op=f"group_by[{key}]", parents=[shuffled]
        )
        out._thunks = [
            _GroupThunk(shuffled, i, key, dict(aggregations), probe.schema)
            for i in range(num_partitions)
        ]
        out._cache = [None] * num_partitions
        return out

    # ------------------------------------------------------------------
    # Actions (eager)
    # ------------------------------------------------------------------

    def collect(
        self, backend: "ExecutorBackend | str | None" = None
    ) -> Table:
        """Materialize the whole dataset as one table.

        ``backend`` selects how partition tasks execute (see
        :mod:`repro.dataplat.executor`); ``None`` uses the process-wide
        default.
        """
        self.materialize(backend)
        parts = [self._partition(i) for i in range(self.num_partitions)]
        out = parts[0]
        for part in parts[1:]:
            out = out.concat_rows(part)
        return out

    def count(self, backend: "ExecutorBackend | str | None" = None) -> int:
        """Total number of rows."""
        self.materialize(backend)
        return sum(self._partition(i).num_rows for i in range(self.num_partitions))

    def reduce_column(
        self,
        name: str,
        fn: str = "sum",
        backend: "ExecutorBackend | str | None" = None,
    ) -> float:
        """Reduce one numeric column across all partitions.

        ``fn`` is ``sum``, ``min`` or ``max``; partial results per partition
        are combined, as a distributed reduce would.
        """
        self.materialize(backend)
        partials = []
        for i in range(self.num_partitions):
            col = self._partition(i).column(name)
            if len(col) == 0:
                continue
            col = col.astype(np.float64)
            if fn == "sum":
                partials.append(col.sum())
            elif fn == "min":
                partials.append(col.min())
            elif fn == "max":
                partials.append(col.max())
            else:
                raise ExecutionError(f"unknown reduce function {fn!r}")
        if not partials:
            return 0.0
        if fn == "sum":
            return float(np.sum(partials))
        if fn == "min":
            return float(np.min(partials))
        return float(np.max(partials))

    # ------------------------------------------------------------------
    # Materialization
    # ------------------------------------------------------------------

    def materialize(
        self, backend: "ExecutorBackend | str | None" = None
    ) -> "Dataset":
        """Compute and cache every partition through ``backend``.

        A serial backend keeps the historical behaviour: partitions are
        evaluated lazily in-process, with counter-based fault draws.  A
        parallel backend executes Spark-style stages — wide (shuffle)
        parents first, then this dataset's partitions fanned out
        concurrently, each task drawing faults keyed by its task id so
        results and chaos decisions are bit-identical to a serial run.
        """
        resolved = resolve_backend(backend)
        if resolved.parallelism <= 1:
            pending = [i for i, c in enumerate(self._cache) if c is None]
            if pending:
                with span(
                    "dataset.stage",
                    op=self._op,
                    backend=resolved.name,
                    tasks=len(pending),
                ):
                    for i in pending:
                        self._partition(i)
            return self
        self._materialize_stages(resolved)
        return self

    def _materialize_stages(self, backend: ExecutorBackend) -> None:
        # Wide dependencies form stage barriers: materializing shuffle
        # parents here (recursively, bottom-up) means fan-out tasks ship
        # cached parent tables instead of recomputing every parent
        # partition once per target.
        for parent in self._stage_parents():
            parent._materialize_stages(backend)
        pending = [i for i, c in enumerate(self._cache) if c is None]
        if not pending:
            return
        spec = None
        if self._runtime is not None:
            rt = self._runtime
            spec = (rt.retry_policy, rt.injector.policy, rt.injector.seed)
        traced = observability.enabled()
        tasks = [(spec, self._op, i, self._thunks[i], traced) for i in pending]
        with span(
            "dataset.stage", op=self._op, backend=backend.name, tasks=len(pending)
        ):
            results = backend.map(_run_partition_task, tasks)
            tracer = observability.get_tracer()
            for i, (table, counters, span_dicts) in zip(pending, results):
                self._cache[i] = table
                if counters is not None and self._runtime is not None:
                    self._runtime.absorb_counters(counters)
                if span_dicts and tracer is not None:
                    # Worker subtrees graft under this stage span, like the
                    # fault counters folding into the parent runtime.
                    tracer.attach(span_dicts)

    def _stage_parents(self) -> list["Dataset"]:
        """Nearest wide ancestors (plus wide self's parents) to pre-build."""
        if self._wide:
            # A shuffle reads every parent partition; build parents first.
            return list(self._parents)
        found: list[Dataset] = []
        seen: set[int] = set()
        stack = list(self._parents)
        while stack:
            node = stack.pop()
            if id(node) in seen:
                continue
            seen.add(id(node))
            if node._wide:
                found.append(node)
            else:
                stack.extend(node._parents)
        return found

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _partition(self, i: int) -> Table:
        cached = self._cache[i]
        if cached is None:
            with span("dataset.task", op=self._op, partition=i) as sp:
                if self._runtime is None:
                    cached = self._thunks[i]()
                else:
                    cached = self._runtime.run_task(self._op, i, self._thunks[i])
                    sp.set_tag(
                        "attempts",
                        self._runtime.task_attempts.get((self._op, i), 1),
                    )
                sp.incr("rows", cached.num_rows)
            self._cache[i] = cached
        return cached


# ----------------------------------------------------------------------
# Picklable partition thunks and task helpers
#
# Thunks are small callable objects (not closures) so a process-pool
# backend can pickle a task together with the lineage slice it needs; a
# thunk wrapping an unpicklable user function simply makes its batch fall
# back to in-process execution.
# ----------------------------------------------------------------------


class _ConstThunk:
    """A pre-built partition."""

    def __init__(self, table: Table) -> None:
        self.table = table

    def __call__(self) -> Table:
        return self.table


class _SliceThunk:
    """One row-range of a root table."""

    def __init__(self, table: Table, lo: int, hi: int) -> None:
        self.table = table
        self.lo = lo
        self.hi = hi

    def __call__(self) -> Table:
        return self.table.take(np.arange(self.lo, self.hi))


class _PartitionThunk:
    """Partition ``index`` of a parent dataset (union re-exposure)."""

    def __init__(self, parent: Dataset, index: int) -> None:
        self.parent = parent
        self.index = index

    def __call__(self) -> Table:
        return self.parent._partition(self.index)


class _MapThunk:
    """``fn`` over one parent partition, schema-checked."""

    def __init__(
        self, parent: Dataset, index: int, fn: PartitionFn, schema: Schema, op: str
    ) -> None:
        self.parent = parent
        self.index = index
        self.fn = fn
        self.schema = schema
        self.op = op

    def __call__(self) -> Table:
        return _check_schema(
            self.fn(self.parent._partition(self.index)), self.schema, self.op
        )


class _FilterFn:
    """Partition function applying a row predicate."""

    def __init__(self, predicate: Callable[[Table], np.ndarray]) -> None:
        self.predicate = predicate

    def __call__(self, table: Table) -> Table:
        return table.filter(self.predicate)


class _SelectFn:
    """Partition function projecting onto named columns."""

    def __init__(self, names: list[str]) -> None:
        self.names = names

    def __call__(self, table: Table) -> Table:
        return table.select(self.names)


class _ShuffleThunk:
    """All parent rows whose key hashes to ``target``."""

    def __init__(
        self, parent: Dataset, key: str, num_partitions: int, target: int
    ) -> None:
        self.parent = parent
        self.key = key
        self.num_partitions = num_partitions
        self.target = target

    def __call__(self) -> Table:
        pieces = []
        for i in range(self.parent.num_partitions):
            part = self.parent._partition(i)
            hashes = _bucket_hash(part.column(self.key)) % self.num_partitions
            pieces.append(part.mask(hashes == self.target))
        out = pieces[0]
        for piece in pieces[1:]:
            out = out.concat_rows(piece)
        return out


class _JoinThunk:
    """Co-partitioned equi-join of one shuffle bucket."""

    def __init__(self, left: Dataset, right: Dataset, index: int, on: str) -> None:
        self.left = left
        self.right = right
        self.index = index
        self.on = on

    def __call__(self) -> Table:
        return self.left._partition(self.index).join(
            self.right._partition(self.index), on=[self.on]
        )


class _GroupThunk:
    """Reduce-side grouped aggregation of one shuffle bucket."""

    def __init__(
        self,
        shuffled: Dataset,
        index: int,
        key: str,
        aggregations: dict[str, tuple[str, str]],
        out_schema: Schema,
    ) -> None:
        self.shuffled = shuffled
        self.index = index
        self.key = key
        self.aggregations = aggregations
        self.out_schema = out_schema

    def __call__(self) -> Table:
        part = self.shuffled._partition(self.index)
        if part.num_rows == 0:
            return Table.empty(self.out_schema)
        return part.group_by([self.key], self.aggregations)


def _run_partition_task(args):
    """Top-level fan-out task body (must be picklable by name).

    Runs one partition thunk, optionally under a *fresh* task runtime built
    from ``spec`` — fresh so the worker never mutates shared parent state,
    which makes the in-process pickling fallback and the cross-process path
    behave identically.  Returns ``(table, counters, spans)`` where counters
    is the worker runtime's accounting and spans the worker tracer's export,
    both folded back into the parent by the caller.

    When the submitting process had tracing on, the task runs under a fresh
    local :class:`~repro.dataplat.observability.Tracer` (installed for the
    duration, previous tracer restored) so the same code path produces the
    same span tree in a pool worker and on the in-process fallback.
    """
    spec, op, index, thunk, traced = args
    worker_tracer = observability.Tracer() if traced else None
    previous = observability.set_tracer(worker_tracer) if traced else None
    try:
        with observability.span("dataset.task", op=op, partition=index) as sp:
            if spec is None:
                result, counters = thunk(), None
            else:
                retry_policy, fault_policy, fault_seed = spec
                runtime = TaskRuntime(
                    retry_policy=retry_policy,
                    injector=FaultInjector(fault_policy, seed=fault_seed),
                    clock=SimClock(),
                )
                result = runtime.run_task_keyed(op, index, thunk)
                counters = runtime.snapshot()
                sp.set_tag(
                    "attempts", runtime.task_attempts.get((op, index), 1)
                )
                if runtime.task_retries:
                    sp.set_tag("retries", runtime.task_retries)
            sp.incr("rows", result.num_rows)
    finally:
        if traced:
            observability.set_tracer(previous)
    spans = worker_tracer.export() if worker_tracer is not None else None
    return result, counters, spans


def _check_schema(table: Table, schema: Schema, op: str) -> Table:
    if table.schema != schema:
        raise ExecutionError(
            f"operation {op!r} produced schema {table.schema!r}, "
            f"declared {schema!r}"
        )
    return table


def _bucket_hash(values: np.ndarray) -> np.ndarray:
    """Stable non-negative bucket hash for a key column.

    Must be deterministic *across processes* (unlike builtin ``hash``,
    which is salted per interpreter): shuffle targets computed in different
    pool workers have to agree on every row's bucket.
    """
    if values.dtype.kind in "iub":
        return np.abs(values.astype(np.int64))
    # String keys: cheap deterministic per-value hash (crc32 is stable).
    import zlib

    return np.asarray(
        [zlib.crc32(str(v).encode("utf-8")) for v in values.tolist()],
        dtype=np.int64,
    )
