"""Execution backends for the compute hot paths.

The paper's platform gets its throughput from parallel task execution on a
Spark/Hadoop cluster; this module is the reproduction's equivalent — a small
backend abstraction that the hot paths (dataset partition materialization,
per-tree forest fits, per-month wide-table builds) fan work out through:

* :class:`SerialBackend` — everything in-process, in submission order.  The
  zero-dependency default and the reference for parity testing.
* :class:`ProcessPoolBackend` — a ``concurrent.futures`` process pool.
  Tasks must be *picklable* (top-level callables and plain-data arguments);
  a batch containing anything unpicklable (e.g. a user lambda inside a
  dataset thunk) transparently falls back to serial execution in the parent
  process, counted in :attr:`ProcessPoolBackend.fallbacks`.

**Determinism contract.**  ``map`` always returns results in submission
order, and callers pre-draw any randomness (bootstrap indices, tree seeds)
*before* submitting, so every backend produces bit-identical results for the
same task list.  Fault injection on parallel paths is keyed by task id (see
:meth:`repro.dataplat.resilience.FaultInjector.should_keyed`), never by
wall-clock submission order.
"""

from __future__ import annotations

import os
import pickle
from collections.abc import Callable, Sequence
from concurrent.futures import ProcessPoolExecutor

from ..config import ExecutorConfig
from ..errors import ExecutionError
from .observability import get_metrics, span

__all__ = [
    "ExecutorBackend",
    "SerialBackend",
    "ProcessPoolBackend",
    "resolve_backend",
    "get_default_backend",
    "set_default_backend",
]


class ExecutorBackend:
    """Maps a picklable function over task arguments, preserving order."""

    #: Short backend kind, e.g. ``"serial"`` or ``"process"``.
    name = "abstract"

    @property
    def parallelism(self) -> int:
        """Number of tasks that can run at once."""
        return 1

    def map(self, fn: Callable, items: Sequence) -> list:
        """Apply ``fn`` to every item, returning results in item order."""
        raise NotImplementedError

    def close(self) -> None:
        """Release any worker resources (idempotent)."""

    def __enter__(self) -> "ExecutorBackend":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class SerialBackend(ExecutorBackend):
    """Run every task inline, in submission order."""

    name = "serial"

    def map(self, fn: Callable, items: Sequence) -> list:
        with span("executor.map", backend=self.name, tasks=len(items)):
            return [fn(item) for item in items]

    def __repr__(self) -> str:
        return "SerialBackend()"


class ProcessPoolBackend(ExecutorBackend):
    """Fan tasks out to a ``concurrent.futures`` process pool.

    Parameters
    ----------
    max_workers:
        Worker processes; 0 means one per CPU.

    The pool is created lazily on first :meth:`map` and survives across
    calls (so repeated fan-outs amortize worker start-up).  Batches whose
    function or arguments cannot be pickled run serially in the parent
    instead — the result is identical because tasks are self-contained; the
    ``fallbacks`` counter records how often that happened.
    """

    name = "process"

    def __init__(self, max_workers: int = 0) -> None:
        if max_workers < 0:
            raise ExecutionError(f"max_workers must be >= 0, got {max_workers}")
        self._max_workers = max_workers if max_workers > 0 else (os.cpu_count() or 1)
        self._pool: ProcessPoolExecutor | None = None
        #: Batches executed serially because they were not picklable.
        self.fallbacks = 0
        #: Tasks actually executed in worker processes.
        self.tasks_dispatched = 0

    @property
    def parallelism(self) -> int:
        return self._max_workers

    def map(self, fn: Callable, items: Sequence) -> list:
        items = list(items)
        if not items:
            return []
        with span(
            "executor.map",
            backend=self.name,
            tasks=len(items),
            workers=self._max_workers,
        ) as sp:
            if self._max_workers == 1 or not self._picklable(fn, items):
                if self._max_workers != 1:
                    self.fallbacks += 1
                    sp.set_tag("fallback", True)
                    get_metrics().counter("executor.fallbacks").inc()
                return [fn(item) for item in items]
            pool = self._ensure_pool()
            chunksize = max(1, len(items) // (self._max_workers * 4))
            self.tasks_dispatched += len(items)
            get_metrics().counter("executor.tasks_dispatched").inc(len(items))
            return list(pool.map(fn, items, chunksize=chunksize))

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None

    def _ensure_pool(self) -> ProcessPoolExecutor:
        if self._pool is None:
            mp_context = None
            try:
                import multiprocessing

                # Prefer fork where available: workers inherit the parent's
                # interpreter state (hash seed included), and start-up is
                # far cheaper than spawn.
                if "fork" in multiprocessing.get_all_start_methods():
                    mp_context = multiprocessing.get_context("fork")
            except (ImportError, ValueError):  # pragma: no cover
                mp_context = None
            self._pool = ProcessPoolExecutor(
                max_workers=self._max_workers, mp_context=mp_context
            )
        return self._pool

    @staticmethod
    def _picklable(fn: Callable, items: Sequence) -> bool:
        try:
            pickle.dumps(fn)
            for item in items:
                pickle.dumps(item)
        except Exception:
            return False
        return True

    def __repr__(self) -> str:
        return f"ProcessPoolBackend(max_workers={self._max_workers})"

    # A backend owns OS resources; it never travels inside pickled tasks.
    def __reduce__(self):
        raise pickle.PicklingError("ProcessPoolBackend is not picklable")


def make_backend(config: ExecutorConfig) -> ExecutorBackend:
    """Instantiate the backend an :class:`ExecutorConfig` describes."""
    if config.backend == "process":
        return ProcessPoolBackend(max_workers=config.num_workers)
    return SerialBackend()


def resolve_backend(
    backend: "ExecutorBackend | ExecutorConfig | str | None",
) -> ExecutorBackend:
    """Normalize any backend spec to an :class:`ExecutorBackend` instance.

    Accepts an instance (returned as-is), an :class:`ExecutorConfig`, a kind
    string (``"serial"`` / ``"process"``), or ``None`` for the process-wide
    default (see :func:`get_default_backend`).
    """
    if backend is None:
        return get_default_backend()
    if isinstance(backend, ExecutorBackend):
        return backend
    if isinstance(backend, ExecutorConfig):
        return make_backend(backend)
    if isinstance(backend, str):
        if backend == "serial":
            return SerialBackend()
        if backend == "process":
            return ProcessPoolBackend()
        raise ExecutionError(f"unknown backend kind {backend!r}")
    raise ExecutionError(f"cannot interpret backend spec {backend!r}")


_default_backend: ExecutorBackend | None = None


def get_default_backend() -> ExecutorBackend:
    """The process-wide default backend.

    Created on first use from ``REPRO_NUM_WORKERS`` / ``REPRO_BACKEND``
    (see :meth:`repro.config.ExecutorConfig.from_env`); serial when unset.
    """
    global _default_backend
    if _default_backend is None:
        _default_backend = make_backend(ExecutorConfig.from_env())
    return _default_backend


def set_default_backend(backend: ExecutorBackend | None) -> None:
    """Override the process-wide default (``None`` re-reads the env)."""
    global _default_backend
    _default_backend = backend
