"""Mini big-data platform: the substrate the churn system runs on.

The paper stores raw BSS/OSS tables in HDFS and does feature engineering with
Hive / Spark SQL.  This package is a faithful single-process analogue:

* :mod:`repro.dataplat.blockstore` — a mini-HDFS (namenode metadata plus
  block storage with replication accounting).
* :mod:`repro.dataplat.schema` / :mod:`repro.dataplat.table` — typed,
  columnar, numpy-backed tables.
* :mod:`repro.dataplat.dataset` — partitioned datasets with map / filter /
  join / shuffle and lineage, a mini-RDD.
* :mod:`repro.dataplat.catalog` — a Hive-like metastore.
* :mod:`repro.dataplat.sql` — a SQL engine (lexer → parser → logical plan →
  optimizer → executor) covering the joins and aggregations the feature
  pipeline needs.
* :mod:`repro.dataplat.etl` — extract-transform-load jobs from raw records
  into catalog tables.
* :mod:`repro.dataplat.resilience` — the fault-tolerant execution runtime:
  seeded chaos injection, retry with deterministic backoff, task retry for
  datasets, and the pipeline health report degraded runs emit.
* :mod:`repro.dataplat.observability` — tracing spans, the process-wide
  metrics registry, and the ``span``/``profiled`` profiling hooks threaded
  through every hot path above.
* :mod:`repro.dataplat.journal` — the write-ahead journal behind the
  catalog's crash-atomic commits, plus recovery and fsck.
* :mod:`repro.dataplat.sharding` — shared-nothing horizontal scale-out:
  the hash partitioner, :class:`~repro.dataplat.sharding.ShardedCatalog`
  (N independent catalogs co-partitioned on the customer id), and the
  :class:`~repro.dataplat.sharding.ShuffleExchange` repartition operator.
"""

from .blockstore import BlockStore, FileStatus, StorageHealth
from .catalog import Catalog
from .dataset import Dataset
from .journal import Durability, RecoveryReport, fsck_store
from .observability import (
    MetricsRegistry,
    Tracer,
    get_metrics,
    profiled,
    span,
    trace,
)
from .resilience import (
    CatalogTableSource,
    FaultInjector,
    FaultPolicy,
    PipelineHealthReport,
    RetryPolicy,
    SimClock,
    TaskRuntime,
)
from .schema import Column, ColumnType, Schema
from .sharding import Placement, ShardedCatalog, ShuffleExchange, shard_of
from .sql import ShardedSQLEngine, SQLEngine
from .table import Table
from .telemetry import TELEMETRY_DATABASE, TelemetrySink, TelemetryWarehouse

__all__ = [
    "BlockStore",
    "Catalog",
    "CatalogTableSource",
    "Column",
    "ColumnType",
    "Dataset",
    "Durability",
    "RecoveryReport",
    "fsck_store",
    "FaultInjector",
    "FaultPolicy",
    "FileStatus",
    "MetricsRegistry",
    "PipelineHealthReport",
    "Placement",
    "RetryPolicy",
    "Schema",
    "ShardedCatalog",
    "ShardedSQLEngine",
    "shard_of",
    "ShuffleExchange",
    "SimClock",
    "SQLEngine",
    "StorageHealth",
    "TELEMETRY_DATABASE",
    "Table",
    "TaskRuntime",
    "TelemetrySink",
    "TelemetryWarehouse",
    "Tracer",
    "get_metrics",
    "profiled",
    "span",
    "trace",
]
