"""Extract-transform-load jobs.

The paper's data layer moves BSS/OSS tables from source systems through a
"multi-vendor data adaption module" into standard-format Hive tables.  An
:class:`ETLJob` reproduces the pattern: extract raw records (dicts) from a
source, validate and coerce them against a target schema, apply row
transformations, and load the result into the catalog — with per-job counters
for rows read / rejected / loaded, which the tests use to verify veracity
accounting.

Rejected records are not just counted: they land in a **quarantine
(dead-letter) table** ``<target>__quarantine`` alongside the reject reason,
so a broken vendor adapter can be diagnosed from the warehouse itself.
Flaky sources are handled by :func:`run_pipeline`, which re-runs a job's
extract on :class:`~repro.errors.TransientError` under a
:class:`~repro.dataplat.resilience.RetryPolicy`.
"""

from __future__ import annotations

from collections.abc import Callable, Iterable, Mapping
from dataclasses import dataclass, field

from ..errors import ETLError
from .catalog import Catalog
from .resilience import RetryPolicy, SimClock
from .schema import ColumnType, Schema
from .table import Table

#: A raw record from a source system.
Record = Mapping[str, object]

#: Optional row-level transformation; return None to drop the record.
TransformFn = Callable[[dict], dict | None]

#: Schema of every quarantine (dead-letter) table.
QUARANTINE_SCHEMA = Schema.of(reason="string", record="string")

#: Suffix appended to a job's target to name its dead-letter table.
QUARANTINE_SUFFIX = "__quarantine"


@dataclass
class ETLStats:
    """Counters accumulated by one job run."""

    rows_read: int = 0
    rows_rejected: int = 0
    rows_loaded: int = 0
    #: Rows written to the dead-letter table (== rows_rejected when
    #: quarantining is on, 0 when off).
    rows_quarantined: int = 0
    #: Extract attempts consumed (> 1 means the source was flaky).
    extract_attempts: int = 1
    reject_reasons: dict[str, int] = field(default_factory=dict)

    def reject(self, reason: str) -> None:
        self.rows_rejected += 1
        self.reject_reasons[reason] = self.reject_reasons.get(reason, 0) + 1


class ETLJob:
    """One extract-transform-load pipeline into a catalog table.

    Parameters
    ----------
    schema:
        Target schema; records missing a column or failing coercion are
        rejected (counted, never silently dropped).
    target:
        Catalog table name to load into.
    transform:
        Optional per-record transformation applied before validation.
    """

    def __init__(
        self,
        schema: Schema,
        target: str,
        transform: TransformFn | None = None,
    ) -> None:
        self._schema = schema
        self._target = target
        self._transform = transform

    def run(
        self,
        records: Iterable[Record],
        catalog: Catalog,
        database: str = "default",
        partition: str | None = None,
        max_reject_fraction: float | None = None,
        quarantine: bool = True,
    ) -> ETLStats:
        """Execute the job; returns the run's counters.

        The reject-rate gate (``max_reject_fraction``) is checked *before*
        anything is saved: a failed job raises :class:`ETLError` without
        registering a mostly-empty target table.  Its rejects still land in
        the quarantine table for diagnosis.
        """
        stats = ETLStats()
        columns: dict[str, list] = {name: [] for name in self._schema.names}
        quarantined: list[tuple[str, str]] = []

        def reject(reason: str, row: Mapping) -> None:
            stats.reject(reason)
            if quarantine:
                quarantined.append((reason, repr(dict(row))))

        for record in records:
            stats.rows_read += 1
            row = dict(record)
            if self._transform is not None:
                transformed = self._transform(row)
                if transformed is None:
                    reject("transform_dropped", row)
                    continue
                row = transformed
            reason = self._coerce(row, columns)
            if reason is not None:
                reject(reason, row)
                continue
            stats.rows_loaded += 1

        failed = (
            max_reject_fraction is not None
            and stats.rows_read > 0
            and stats.rows_rejected / stats.rows_read > max_reject_fraction
        )
        if quarantine and quarantined:
            self._save_quarantine(quarantined, catalog, database, partition)
            stats.rows_quarantined = len(quarantined)
        if failed:
            raise ETLError(
                f"job {self._target!r} rejected "
                f"{stats.rows_rejected / stats.rows_read:.0%} of rows "
                f"(> {max_reject_fraction:.0%}): {stats.reject_reasons}"
            )
        table = Table(
            self._schema,
            {
                name: _column_array(values, self._schema[name].ctype)
                for name, values in columns.items()
            },
        )
        catalog.save(table, self._target, database=database, partition=partition)
        return stats

    def _coerce(self, row: dict, columns: dict[str, list]) -> str | None:
        """Coerce ``row`` into ``columns``; returns a reject reason or None.

        Nothing is appended unless the whole row coerces, so a mid-row
        failure cannot leave ragged columns behind.
        """
        out: dict = {}
        for col in self._schema:
            if col.name not in row:
                return f"missing:{col.name}"
            value = row[col.name]
            try:
                out[col.name] = _coerce_value(value, col.ctype)
            except (TypeError, ValueError):
                return f"badtype:{col.name}"
        for name in self._schema.names:
            columns[name].append(out[name])
        return None

    def _save_quarantine(
        self,
        quarantined: list[tuple[str, str]],
        catalog: Catalog,
        database: str,
        partition: str | None,
    ) -> None:
        import numpy as np

        table = Table(
            QUARANTINE_SCHEMA,
            {
                "reason": np.asarray([q[0] for q in quarantined]),
                "record": np.asarray([q[1] for q in quarantined]),
            },
        )
        catalog.save(
            table,
            f"{self._target}{QUARANTINE_SUFFIX}",
            database=database,
            partition=partition,
        )


def _coerce_value(value: object, ctype: ColumnType):
    if ctype is ColumnType.INT:
        if isinstance(value, bool):
            return int(value)
        if isinstance(value, float) and not value.is_integer():
            raise ValueError(f"non-integral value {value!r}")
        return int(value)  # type: ignore[arg-type]
    if ctype is ColumnType.FLOAT:
        return float(value)  # type: ignore[arg-type]
    if ctype is ColumnType.BOOL:
        if isinstance(value, bool):
            return value
        if value in (0, 1):
            return bool(value)
        raise ValueError(f"not a boolean: {value!r}")
    return str(value)


def _column_array(values: list, ctype: ColumnType):
    import numpy as np

    if not values:
        return np.empty(0, dtype=ctype.dtype)
    return np.asarray(values, dtype=ctype.dtype)


#: A record source: a plain iterable, or a zero-argument factory returning a
#: fresh iterable (required for the extract to be retryable).
RecordSource = Iterable[Record] | Callable[[], Iterable[Record]]


def run_pipeline(
    jobs: Iterable[tuple[ETLJob, RecordSource]],
    catalog: Catalog,
    database: str = "default",
    partition: str | None = None,
    max_reject_fraction: float = 0.5,
    retry_policy: RetryPolicy | None = None,
    clock: SimClock | None = None,
) -> dict[str, ETLStats]:
    """Run several jobs; fail loudly if any job rejects too many rows.

    Telco data is high-veracity ("very low inconsistencies"); a high reject
    rate signals a broken adapter, so the pipeline raises *before* loading
    a mostly-empty table (the target is never registered on failure).

    A source may be a zero-argument callable returning a fresh record
    iterable; combined with ``retry_policy``, an extract that dies with a
    :class:`~repro.errors.TransientError` (flaky vendor feed) is re-run
    from the start with capped exponential backoff.
    """
    all_stats: dict[str, ETLStats] = {}
    for job, source in jobs:
        attempts = 0

        def run_once(job=job, source=source) -> ETLStats:
            nonlocal attempts
            attempts += 1
            records = source() if callable(source) else source
            return job.run(
                records,
                catalog,
                database=database,
                partition=partition,
                max_reject_fraction=max_reject_fraction,
            )

        if retry_policy is not None and callable(source):
            stats = retry_policy.call(run_once, clock=clock)
        else:
            stats = run_once()
        stats.extract_attempts = attempts
        all_stats[job._target] = stats
    return all_stats
