"""Extract-transform-load jobs.

The paper's data layer moves BSS/OSS tables from source systems through a
"multi-vendor data adaption module" into standard-format Hive tables.  An
:class:`ETLJob` reproduces the pattern: extract raw records (dicts) from a
source, validate and coerce them against a target schema, apply row
transformations, and load the result into the catalog — with per-job counters
for rows read / rejected / loaded, which the tests use to verify veracity
accounting.
"""

from __future__ import annotations

from collections.abc import Callable, Iterable, Mapping
from dataclasses import dataclass, field

from ..errors import ETLError
from .catalog import Catalog
from .schema import ColumnType, Schema
from .table import Table

#: A raw record from a source system.
Record = Mapping[str, object]

#: Optional row-level transformation; return None to drop the record.
TransformFn = Callable[[dict], dict | None]


@dataclass
class ETLStats:
    """Counters accumulated by one job run."""

    rows_read: int = 0
    rows_rejected: int = 0
    rows_loaded: int = 0
    reject_reasons: dict[str, int] = field(default_factory=dict)

    def reject(self, reason: str) -> None:
        self.rows_rejected += 1
        self.reject_reasons[reason] = self.reject_reasons.get(reason, 0) + 1


class ETLJob:
    """One extract-transform-load pipeline into a catalog table.

    Parameters
    ----------
    schema:
        Target schema; records missing a column or failing coercion are
        rejected (counted, never silently dropped).
    target:
        Catalog table name to load into.
    transform:
        Optional per-record transformation applied before validation.
    """

    def __init__(
        self,
        schema: Schema,
        target: str,
        transform: TransformFn | None = None,
    ) -> None:
        self._schema = schema
        self._target = target
        self._transform = transform

    def run(
        self,
        records: Iterable[Record],
        catalog: Catalog,
        database: str = "default",
        partition: str | None = None,
    ) -> ETLStats:
        """Execute the job; returns the run's counters."""
        stats = ETLStats()
        columns: dict[str, list] = {name: [] for name in self._schema.names}
        for record in records:
            stats.rows_read += 1
            row = dict(record)
            if self._transform is not None:
                transformed = self._transform(row)
                if transformed is None:
                    stats.reject("transform_dropped")
                    continue
                row = transformed
            coerced = self._coerce(row, stats)
            if coerced is None:
                continue
            for name in self._schema.names:
                columns[name].append(coerced[name])
            stats.rows_loaded += 1
        table = Table(
            self._schema,
            {
                name: _column_array(values, self._schema[name].ctype)
                for name, values in columns.items()
            },
        )
        catalog.save(table, self._target, database=database, partition=partition)
        return stats

    def _coerce(self, row: dict, stats: ETLStats) -> dict | None:
        out: dict = {}
        for col in self._schema:
            if col.name not in row:
                stats.reject(f"missing:{col.name}")
                return None
            value = row[col.name]
            try:
                out[col.name] = _coerce_value(value, col.ctype)
            except (TypeError, ValueError):
                stats.reject(f"badtype:{col.name}")
                return None
        return out


def _coerce_value(value: object, ctype: ColumnType):
    if ctype is ColumnType.INT:
        if isinstance(value, bool):
            return int(value)
        if isinstance(value, float) and not value.is_integer():
            raise ValueError(f"non-integral value {value!r}")
        return int(value)  # type: ignore[arg-type]
    if ctype is ColumnType.FLOAT:
        return float(value)  # type: ignore[arg-type]
    if ctype is ColumnType.BOOL:
        if isinstance(value, bool):
            return value
        if value in (0, 1):
            return bool(value)
        raise ValueError(f"not a boolean: {value!r}")
    return str(value)


def _column_array(values: list, ctype: ColumnType):
    import numpy as np

    if not values:
        return np.empty(0, dtype=ctype.dtype)
    return np.asarray(values, dtype=ctype.dtype)


def run_pipeline(
    jobs: Iterable[tuple[ETLJob, Iterable[Record]]],
    catalog: Catalog,
    database: str = "default",
    partition: str | None = None,
    max_reject_fraction: float = 0.5,
) -> dict[str, ETLStats]:
    """Run several jobs; fail loudly if any job rejects too many rows.

    Telco data is high-veracity ("very low inconsistencies"); a high reject
    rate signals a broken adapter, so the pipeline raises instead of loading
    a mostly-empty table.
    """
    all_stats: dict[str, ETLStats] = {}
    for job, records in jobs:
        stats = job.run(records, catalog, database=database, partition=partition)
        all_stats[job._target] = stats
        if stats.rows_read > 0:
            reject_fraction = stats.rows_rejected / stats.rows_read
            if reject_fraction > max_reject_fraction:
                raise ETLError(
                    f"job {job._target!r} rejected "
                    f"{reject_fraction:.0%} of rows: {stats.reject_reasons}"
                )
    return all_stats
