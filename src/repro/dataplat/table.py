"""Columnar, numpy-backed tables.

A :class:`Table` is the platform's unit of data: an immutable mapping from
column names to equal-length numpy arrays, plus a :class:`~.schema.Schema`.
All relational operations (filter, project, join, group-by) are vectorized.

Tables serialize to / from the block store via a simple npz-based codec so the
mini-HDFS stores real bytes, not Python references.
"""

from __future__ import annotations

import io
from collections.abc import Callable, Iterable, Iterator, Mapping, Sequence
from typing import Any

import numpy as np

from ..errors import SchemaError
from .schema import Column, ColumnType, Schema


class Table:
    """An immutable columnar table.

    Parameters
    ----------
    schema:
        Column definitions; order defines column order.
    columns:
        Mapping of column name → array-like.  Arrays are cast to the schema's
        canonical dtypes and must share one length.
    """

    def __init__(self, schema: Schema, columns: Mapping[str, Iterable]) -> None:
        missing = set(schema.names) - set(columns)
        extra = set(columns) - set(schema.names)
        if missing:
            raise SchemaError(f"missing columns: {sorted(missing)}")
        if extra:
            raise SchemaError(f"unexpected columns: {sorted(extra)}")
        data: dict[str, np.ndarray] = {}
        length: int | None = None
        for col in schema:
            arr = col.cast(columns[col.name])
            if arr.ndim != 1:
                raise SchemaError(f"column {col.name!r} must be 1-D, got {arr.ndim}-D")
            if length is None:
                length = len(arr)
            elif len(arr) != length:
                raise SchemaError(
                    f"column {col.name!r} has length {len(arr)}, expected {length}"
                )
            data[col.name] = arr
        self._schema = schema
        self._data = data
        self._length = length if length is not None else 0

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------

    @classmethod
    def from_arrays(cls, **columns: Iterable) -> "Table":
        """Build a table inferring the schema from numpy dtypes."""
        cols = []
        cast: dict[str, np.ndarray] = {}
        for name, values in columns.items():
            arr = np.asarray(values)
            ctype = ColumnType.infer(arr)
            cols.append(Column(name, ctype))
            cast[name] = arr
        return cls(Schema(cols), cast)

    @classmethod
    def from_rows(cls, schema: Schema, rows: Iterable[Sequence]) -> "Table":
        """Build a table from an iterable of row tuples."""
        rows = list(rows)
        columns: dict[str, list] = {name: [] for name in schema.names}
        for row in rows:
            if len(row) != len(schema):
                raise SchemaError(
                    f"row has {len(row)} values, schema has {len(schema)}"
                )
            for name, value in zip(schema.names, row):
                columns[name].append(value)
        if not rows:
            columns = {
                c.name: np.empty(0, dtype=c.ctype.dtype) for c in schema
            }
        return cls(schema, columns)

    @classmethod
    def empty(cls, schema: Schema) -> "Table":
        """An empty table with the given schema."""
        return cls.from_rows(schema, [])

    # ------------------------------------------------------------------
    # Basic accessors
    # ------------------------------------------------------------------

    @property
    def schema(self) -> Schema:
        return self._schema

    @property
    def num_rows(self) -> int:
        return self._length

    @property
    def nbytes(self) -> int:
        """Approximate decoded size in bytes (cache accounting).

        Object (string) columns count the pointer array plus the character
        payload, so a wide string table is not billed as 8 bytes per cell.
        """
        total = 0
        for arr in self._data.values():
            total += arr.nbytes
            if arr.dtype.kind == "O":
                total += sum(len(str(v)) for v in arr)
        return total

    @property
    def num_columns(self) -> int:
        return len(self._schema)

    def __len__(self) -> int:
        return self._length

    def __contains__(self, name: object) -> bool:
        return name in self._schema

    def column(self, name: str) -> np.ndarray:
        """The backing array of one column (do not mutate)."""
        self._schema[name]  # raises SchemaError with a helpful message
        return self._data[name]

    def __getitem__(self, name: str) -> np.ndarray:
        return self.column(name)

    def rows(self) -> Iterator[tuple]:
        """Iterate over rows as tuples (column order = schema order)."""
        arrays = [self._data[name] for name in self._schema.names]
        for i in range(self._length):
            yield tuple(arr[i] for arr in arrays)

    def to_dict(self) -> dict[str, np.ndarray]:
        """Copy of the column mapping."""
        return dict(self._data)

    def __repr__(self) -> str:
        return f"Table({self._length} rows, {self._schema!r})"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Table):
            return NotImplemented
        if self._schema != other._schema or self._length != other._length:
            return False
        return all(
            np.array_equal(self._data[n], other._data[n]) for n in self._schema.names
        )

    # ------------------------------------------------------------------
    # Relational operations
    # ------------------------------------------------------------------

    def select(self, names: Sequence[str]) -> "Table":
        """Project onto the given columns."""
        schema = self._schema.select(names)
        return Table(schema, {n: self._data[n] for n in names})

    def rename(self, mapping: dict[str, str]) -> "Table":
        """Rename columns per ``mapping``."""
        schema = self._schema.rename(mapping)
        data = {mapping.get(n, n): self._data[n] for n in self._schema.names}
        return Table(schema, data)

    def with_column(self, name: str, values: Iterable) -> "Table":
        """Append (or replace) a column."""
        arr = np.asarray(values)
        ctype = ColumnType.infer(arr)
        if name in self._schema:
            cols = [
                Column(name, ctype) if c.name == name else c for c in self._schema
            ]
        else:
            cols = list(self._schema.columns) + [Column(name, ctype)]
        data = dict(self._data)
        data[name] = arr
        return Table(Schema(cols), data)

    def drop(self, names: Sequence[str]) -> "Table":
        """Drop the given columns."""
        for n in names:
            self._schema[n]
        keep = [n for n in self._schema.names if n not in set(names)]
        return self.select(keep)

    def take(self, indices: np.ndarray) -> "Table":
        """Row selection by integer indices (also reorders)."""
        data = {n: arr[indices] for n, arr in self._data.items()}
        return Table(self._schema, data)

    def mask(self, predicate: np.ndarray) -> "Table":
        """Row selection by boolean mask."""
        predicate = np.asarray(predicate, dtype=bool)
        if len(predicate) != self._length:
            raise SchemaError(
                f"mask length {len(predicate)} != table length {self._length}"
            )
        return self.take(np.flatnonzero(predicate))

    def filter(self, fn: Callable[["Table"], np.ndarray]) -> "Table":
        """Filter with a vectorized predicate over the whole table."""
        return self.mask(fn(self))

    def head(self, n: int) -> "Table":
        """First ``n`` rows."""
        return self.take(np.arange(min(n, self._length)))

    def sort_by(self, names: Sequence[str], descending: bool = False) -> "Table":
        """Stable multi-key sort."""
        keys = [self._data[n] for n in reversed(list(names))]
        order = np.lexsort(keys)
        if descending:
            order = order[::-1]
        return self.take(order)

    def concat_rows(self, other: "Table") -> "Table":
        """Stack another table with an identical schema underneath."""
        if other.schema != self._schema:
            raise SchemaError(
                f"schema mismatch: {self._schema!r} vs {other.schema!r}"
            )
        data = {
            n: np.concatenate([self._data[n], other._data[n]])
            for n in self._schema.names
        }
        return Table(self._schema, data)

    def join(
        self,
        other: "Table",
        on: Sequence[str],
        how: str = "inner",
        suffix: str = "_r",
        strategy: str = "hash",
    ) -> "Table":
        """Equi-join on the columns ``on``.

        ``how`` is ``"inner"`` or ``"left"``.  Right-side columns that collide
        with left-side names (other than the keys) get ``suffix`` appended.
        For left joins, unmatched numeric right columns are filled with 0 /
        0.0 / False and string columns with ``""``.

        ``strategy`` picks the matching kernel: ``"hash"`` (bincount
        buckets) or ``"merge"`` (sorted right side probed by binary
        search).  Both produce bit-identical output; merge avoids the
        O(code-space) bucket allocation when keys are high-cardinality.
        """
        if how not in ("inner", "left"):
            raise SchemaError(f"unsupported join type: {how!r}")
        if strategy not in ("hash", "merge"):
            raise SchemaError(f"unsupported join strategy: {strategy!r}")
        on = list(on)
        indices = _join_indices if strategy == "hash" else _join_indices_merge
        li, ri, ui = indices(self, other, on, how)

        right_cols = [c for c in other.schema if c.name not in set(on)]
        out_cols = list(self._schema.columns)
        rename: dict[str, str] = {}
        for col in right_cols:
            name = col.name
            if name in self._schema:
                name = f"{col.name}{suffix}"
                rename[col.name] = name
            out_cols.append(Column(name, col.ctype))
        out_schema = Schema(out_cols)

        data: dict[str, np.ndarray] = {}
        for name in self._schema.names:
            matched = self._data[name][li]
            if how == "left" and len(ui):
                data[name] = np.concatenate([matched, self._data[name][ui]])
            else:
                data[name] = matched
        for col in right_cols:
            out_name = rename.get(col.name, col.name)
            matched = other._data[col.name][ri]
            if how == "left" and len(ui):
                fill = _fill_value(col.ctype)
                pad = np.full(len(ui), fill, dtype=matched.dtype)
                data[out_name] = np.concatenate([matched, pad])
            else:
                data[out_name] = matched
        return Table(out_schema, data)

    def group_by(
        self,
        keys: Sequence[str],
        aggregations: Mapping[str, tuple[str, str]],
    ) -> "Table":
        """Group by ``keys`` and aggregate.

        ``aggregations`` maps output column name → ``(function, input column)``
        where function is one of ``sum``, ``mean``, ``min``, ``max``,
        ``count``, ``count_distinct``, ``first``.

        >>> t = Table.from_arrays(k=np.array([1, 1, 2]), v=np.array([1.0, 2.0, 3.0]))
        >>> g = t.group_by(["k"], {"total": ("sum", "v")})
        >>> sorted((int(k), float(v)) for k, v in zip(g["k"], g["total"]))
        [(1, 3.0), (2, 3.0)]
        """
        keys = list(keys)
        if not keys:
            raise SchemaError("group_by requires at least one key")
        key_arrays = [self._data[k] for k in keys]
        group_ids, uniques = _group_ids(key_arrays)
        n_groups = len(uniques[0]) if uniques else 0

        out_cols = [self._schema[k] for k in keys]
        data: dict[str, np.ndarray] = {
            k: uniques[i] for i, k in enumerate(keys)
        }
        for out_name, (fn, col_name) in aggregations.items():
            values = None if fn == "count" else self._data[col_name]
            agg = _aggregate(fn, group_ids, n_groups, values)
            data[out_name] = agg
            out_cols.append(Column(out_name, ColumnType.infer(agg)))
        return Table(Schema(out_cols), data)

    # ------------------------------------------------------------------
    # Serialization (for the block store)
    # ------------------------------------------------------------------

    def to_bytes(self) -> bytes:
        """Serialize to npz bytes (string columns stored as unicode)."""
        buf = io.BytesIO()
        arrays = {}
        meta = []
        for col in self._schema:
            arr = self._data[col.name]
            if col.ctype is ColumnType.STRING:
                arr = arr.astype(str)
            arrays[col.name] = arr
            meta.append(f"{col.name}:{col.ctype.value}")
        arrays["__schema__"] = np.asarray(meta, dtype=str)
        np.savez(buf, **arrays)
        return buf.getvalue()

    @classmethod
    def from_bytes(cls, payload: bytes) -> "Table":
        """Inverse of :meth:`to_bytes`."""
        with np.load(io.BytesIO(payload), allow_pickle=False) as npz:
            meta = [str(m) for m in npz["__schema__"]]
            cols = []
            data = {}
            for entry in meta:
                name, _, ctype_name = entry.rpartition(":")
                col = Column(name, ColumnType(ctype_name))
                cols.append(col)
                arr = npz[name]
                if col.ctype is ColumnType.STRING:
                    arr = arr.astype(object)
                data[name] = arr
        return cls(Schema(cols), data)


def _key_ids(table: Table, on: Sequence[str]) -> list:
    """Row keys for join hashing."""
    arrays = [table.column(n) for n in on]
    if len(arrays) == 1:
        return arrays[0].tolist()
    return list(zip(*(a.tolist() for a in arrays)))


def _join_codes(
    left: Table, right: Table, on: Sequence[str]
) -> tuple[np.ndarray, np.ndarray]:
    """Shared dense key codes for both sides of an equi-join.

    Factorizes each key column over the *concatenation* of the two sides
    so equal keys get equal codes regardless of side, combining multiple
    keys mixed-radix and re-densifying.  ``equal_nan=False`` keeps the
    hash-path semantics: NaN keys never match anything, themselves
    included.
    """
    n_left = left.num_rows
    combined: np.ndarray | None = None
    for name in on:
        both = np.concatenate([left.column(name), right.column(name)])
        uniq, codes = np.unique(both, return_inverse=True, equal_nan=False)
        codes = codes.astype(np.int64, copy=False)
        if combined is None:
            combined = codes
        else:
            combined = combined * (len(uniq) + 1) + codes
            _, combined = np.unique(combined, return_inverse=True)
            combined = combined.astype(np.int64, copy=False)
    assert combined is not None
    return combined[:n_left], combined[n_left:]


def _join_indices_hashed(
    left: Table, right: Table, on: Sequence[str], how: str
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Reference dict-bucket join (row order the vectorized path must match)."""
    left_keys = _key_ids(left, on)
    right_keys = _key_ids(right, on)
    buckets: dict[Any, list[int]] = {}
    for idx, key in enumerate(right_keys):
        buckets.setdefault(key, []).append(idx)
    left_idx: list[int] = []
    right_idx: list[int] = []
    unmatched: list[int] = []
    for idx, key in enumerate(left_keys):
        matches = buckets.get(key)
        if matches:
            left_idx.extend([idx] * len(matches))
            right_idx.extend(matches)
        elif how == "left":
            unmatched.append(idx)
    return (
        np.asarray(left_idx, dtype=np.intp),
        np.asarray(right_idx, dtype=np.intp),
        np.asarray(unmatched, dtype=np.intp),
    )


def _join_indices(
    left: Table, right: Table, on: Sequence[str], how: str
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Row indices realizing an equi-join: (left, right, unmatched-left).

    Vectorized: factorize keys to shared codes, group right rows per code
    with a stable argsort, then expand each left row against its code's
    run.  Matched pairs come out ordered by left row, ties by right row —
    bit-identical to :func:`_join_indices_hashed`, which remains the
    fallback for key columns numpy cannot sort together (e.g. a numeric
    column joined against strings; such keys never match anyway).
    """
    if not on:
        empty = np.empty(0, dtype=np.intp)
        return empty, empty, empty
    try:
        left_codes, right_codes = _join_codes(left, right, on)
    except TypeError:
        return _join_indices_hashed(left, right, on, how)
    n_codes = int(
        max(
            left_codes.max(initial=-1), right_codes.max(initial=-1)
        )
    ) + 1
    counts = np.bincount(right_codes, minlength=n_codes)
    order = np.argsort(right_codes, kind="stable")
    starts = np.concatenate(([0], np.cumsum(counts)[:-1])) if n_codes else (
        np.empty(0, dtype=np.int64)
    )
    reps = counts[left_codes]
    ends = np.cumsum(reps)
    total = int(ends[-1]) if len(ends) else 0
    li = np.repeat(np.arange(left.num_rows, dtype=np.intp), reps)
    within = np.arange(total, dtype=np.int64) - np.repeat(ends - reps, reps)
    ri = order[np.repeat(starts[left_codes], reps) + within].astype(
        np.intp, copy=False
    )
    if how == "left":
        ui = np.flatnonzero(reps == 0).astype(np.intp, copy=False)
    else:
        ui = np.empty(0, dtype=np.intp)
    return li, ri, ui


def _join_indices_merge(
    left: Table, right: Table, on: Sequence[str], how: str
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Sort-merge variant of :func:`_join_indices`, bit-identical output.

    Sorts the right side's key codes once (stable, so right ties keep row
    order) and finds each left row's match run with two binary searches.
    Unlike the hash path it never allocates count/start arrays over the
    whole code space, which pays off when keys are near-unique.
    """
    if not on:
        empty = np.empty(0, dtype=np.intp)
        return empty, empty, empty
    try:
        left_codes, right_codes = _join_codes(left, right, on)
    except TypeError:
        return _join_indices_hashed(left, right, on, how)
    order = np.argsort(right_codes, kind="stable")
    sorted_codes = right_codes[order]
    starts = np.searchsorted(sorted_codes, left_codes, side="left")
    ends = np.searchsorted(sorted_codes, left_codes, side="right")
    reps = ends - starts
    cum = np.cumsum(reps)
    total = int(cum[-1]) if len(cum) else 0
    li = np.repeat(np.arange(left.num_rows, dtype=np.intp), reps)
    within = np.arange(total, dtype=np.int64) - np.repeat(cum - reps, reps)
    ri = order[np.repeat(starts, reps) + within].astype(np.intp, copy=False)
    if how == "left":
        ui = np.flatnonzero(reps == 0).astype(np.intp, copy=False)
    else:
        ui = np.empty(0, dtype=np.intp)
    return li, ri, ui


def _fill_value(ctype: ColumnType):
    if ctype is ColumnType.STRING:
        return ""
    if ctype is ColumnType.BOOL:
        return False
    if ctype is ColumnType.INT:
        return 0
    return 0.0


def _group_ids(key_arrays: list[np.ndarray]) -> tuple[np.ndarray, list[np.ndarray]]:
    """Dense group ids plus per-key unique value arrays (aligned)."""
    if len(key_arrays) == 1:
        uniq, ids = np.unique(key_arrays[0], return_inverse=True)
        return ids, [uniq]
    # Combine keys into a structured view by factorizing each then combining.
    factors = []
    sizes = []
    for arr in key_arrays:
        uniq, ids = np.unique(arr, return_inverse=True)
        factors.append((uniq, ids))
        sizes.append(len(uniq))
    combined = np.zeros(len(key_arrays[0]), dtype=np.int64)
    for (uniq, ids), size in zip(factors, sizes):
        combined = combined * size + ids
    uniq_combined, group_ids = np.unique(combined, return_inverse=True)
    # Recover one representative row index per group to read key values back.
    first_idx = np.zeros(len(uniq_combined), dtype=np.intp)
    seen = np.full(len(uniq_combined), False)
    for row, gid in enumerate(group_ids):
        if not seen[gid]:
            seen[gid] = True
            first_idx[gid] = row
    uniques = [arr[first_idx] for arr in key_arrays]
    return group_ids, uniques


def _aggregate(
    fn: str, group_ids: np.ndarray, n_groups: int, values: np.ndarray | None
) -> np.ndarray:
    """Vectorized aggregation of ``values`` per group."""
    if fn == "count":
        return np.bincount(group_ids, minlength=n_groups).astype(np.int64)
    if values is None:
        raise SchemaError(f"aggregation {fn!r} requires an input column")
    if fn == "count_distinct":
        out = np.zeros(n_groups, dtype=np.int64)
        pairs = {}
        for gid, val in zip(group_ids.tolist(), values.tolist()):
            pairs.setdefault(gid, set()).add(val)
        for gid, vals in pairs.items():
            out[gid] = len(vals)
        return out
    if fn == "first":
        out = np.empty(n_groups, dtype=values.dtype)
        seen = np.full(n_groups, False)
        for row in range(len(values) - 1, -1, -1):
            out[group_ids[row]] = values[row]
        del seen
        return out
    numeric = values.astype(np.float64)
    if fn == "sum":
        # bincount returns int64 on empty input even with float weights.
        return np.bincount(
            group_ids, weights=numeric, minlength=n_groups
        ).astype(np.float64)
    if fn == "mean":
        totals = np.bincount(group_ids, weights=numeric, minlength=n_groups)
        counts = np.bincount(group_ids, minlength=n_groups)
        return totals / np.maximum(counts, 1)
    if fn == "min":
        out = np.full(n_groups, np.inf)
        np.minimum.at(out, group_ids, numeric)
        out[np.isinf(out)] = 0.0
        return out
    if fn == "max":
        out = np.full(n_groups, -np.inf)
        np.maximum.at(out, group_ids, numeric)
        out[np.isinf(out)] = 0.0
        return out
    raise SchemaError(f"unknown aggregation function: {fn!r}")
