"""A Hive-like metastore over the block store.

The paper lands raw BSS/OSS tables in HDFS as Hive tables and re-reads the
intermediate feature tables "many times".  :class:`Catalog` reproduces that:
it maps ``database.table`` (optionally partitioned, e.g. by month) onto block
store paths, caches deserialized tables, and exposes the listing / drop /
describe surface a metastore has.

Partitions are stored in the **v2 columnar format** by default (one chunk
per column, zone maps in a JSON manifest — see :mod:`.columnar`); v1
whole-table npz partitions remain readable, negotiated per path.  The
:meth:`Catalog.scan` API reads only the column chunks a query references
and skips partitions whose zone maps cannot satisfy the pushed-down
conjuncts.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import CatalogError
from .blockstore import DEFAULT_TABLE_CACHE_BYTES, BlockStore, TableCache
from .columnar import (
    CHUNK_SUFFIX,
    MANIFEST_SUFFIX,
    ChunkMeta,
    PartitionManifest,
    ScanPredicate,
    array_nbytes,
    chunk_dir,
    decode_column,
    encode_column,
    manifest_allows,
)
from .observability import get_metrics, span
from .schema import Schema
from .table import Table


@dataclass(frozen=True)
class TableInfo:
    """Metadata about one catalog table."""

    database: str
    name: str
    schema: Schema
    partitions: tuple[str, ...]

    @property
    def qualified_name(self) -> str:
        return f"{self.database}.{self.name}"


class Catalog:
    """Metastore mapping logical tables to block-store files.

    Parameters
    ----------
    store:
        Backing :class:`BlockStore`; a private one is created if omitted.
    cache_bytes:
        Decoded-bytes budget of the LRU table cache.  v2 partitions cache
        **per column chunk**, so a two-column query over a 140-column table
        no longer evicts the whole cache; v1 partitions still cache as one
        decoded table per file.  Hit/miss/eviction counters land on the
        store's :class:`StorageHealth`, and the cache is invalidated
        whenever the store reports a path's bytes may have changed (write,
        delete, repair, injected corruption).
    default_format:
        ``"v2"`` (chunked columnar, the default) or ``"v1"`` (whole-table
        npz) for new :meth:`save` calls; either format stays readable.
    """

    #: Partition value used for unpartitioned tables.
    DEFAULT_PARTITION = "__all__"

    def __init__(
        self,
        store: BlockStore | None = None,
        cache_bytes: int = DEFAULT_TABLE_CACHE_BYTES,
        default_format: str = "v2",
    ) -> None:
        if default_format not in ("v1", "v2"):
            raise CatalogError(
                f"unknown format {default_format!r}; expected 'v1' or 'v2'"
            )
        self._store = store if store is not None else BlockStore()
        self._format = default_format
        self._tables: dict[tuple[str, str], dict[str, str]] = {}
        self._schemas: dict[tuple[str, str], Schema] = {}
        self._cache = TableCache(cache_bytes, health=self._store.health)
        #: Decoded manifests by path; tiny, so kept outside the LRU budget.
        self._manifests: dict[str, PartitionManifest] = {}
        #: Temp views live outside the LRU: they have no backing file, so
        #: eviction would lose them rather than cost a re-read.
        self._temp: dict[str, Table] = {}
        self._databases: set[str] = {"default"}
        self._store.add_invalidation_listener(self._on_invalidated)

    @property
    def store(self) -> BlockStore:
        return self._store

    @property
    def table_cache(self) -> TableCache:
        """The decoded-table/chunk LRU (for monitoring and tests)."""
        return self._cache

    def _on_invalidated(self, path: str) -> None:
        self._cache.invalidate(path)
        self._manifests.pop(path, None)

    # ------------------------------------------------------------------
    # Databases
    # ------------------------------------------------------------------

    def create_database(self, name: str) -> None:
        """Create a database (idempotent)."""
        self._databases.add(name)

    def databases(self) -> list[str]:
        return sorted(self._databases)

    # ------------------------------------------------------------------
    # Tables
    # ------------------------------------------------------------------

    def save(
        self,
        table: Table,
        name: str,
        database: str = "default",
        partition: str | None = None,
        overwrite: bool = True,
        format: str | None = None,
    ) -> None:
        """Write ``table`` to the store and register it.

        A ``partition`` value (e.g. ``"month=3"``) appends/overwrites one
        partition; omitted means the whole unpartitioned table.  ``format``
        overrides the catalog's default storage format for this partition.
        """
        if database not in self._databases:
            raise CatalogError(f"unknown database: {database}")
        fmt = format or self._format
        if fmt not in ("v1", "v2"):
            raise CatalogError(f"unknown format {fmt!r}; expected 'v1' or 'v2'")
        key = (database, name)
        partition = partition or self.DEFAULT_PARTITION
        existing = self._schemas.get(key)
        if existing is not None and existing != table.schema:
            raise CatalogError(
                f"schema mismatch for {database}.{name}: partition schema "
                f"{table.schema!r} != table schema {existing!r}"
            )
        base = self._path_base(database, name, partition)
        path = base + (MANIFEST_SUFFIX if fmt == "v2" else ".npz")
        old = self._tables.get(key, {}).get(partition)
        if old is not None and self._store.exists(old) and not overwrite:
            raise CatalogError(f"partition exists: {database}.{name}/{partition}")
        if old is not None and old != path:
            # Format changed for this partition: drop the stale files.
            self._delete_partition_files(old)
        if fmt == "v1":
            self._store.write(path, table.to_bytes())
            self._tables.setdefault(key, {})[partition] = path
            self._schemas[key] = table.schema
            # The write invalidated any stale entry; cache the fresh table.
            self._cache.put(path, table, table.nbytes)
            return
        chunks = []
        arrays = {}
        for column in table.schema:
            arr = table.column(column.name)
            payload, zone = encode_column(column, arr)
            chunk_path = f"{base}/{column.name}{CHUNK_SUFFIX}"
            self._store.write(chunk_path, payload)
            chunks.append(
                ChunkMeta(
                    name=column.name,
                    ctype=column.ctype.value,
                    path=chunk_path,
                    encoded_bytes=len(payload),
                    decoded_bytes=array_nbytes(arr),
                    zone=zone,
                )
            )
            arrays[chunk_path] = arr
        manifest = PartitionManifest(rows=table.num_rows, chunks=tuple(chunks))
        self._store.write(path, manifest.to_bytes())
        self._tables.setdefault(key, {})[partition] = path
        self._schemas[key] = table.schema
        # The writes invalidated any stale entries; cache the fresh chunks.
        self._manifests[path] = manifest
        for chunk_path, arr in arrays.items():
            self._cache.put(chunk_path, arr, array_nbytes(arr))

    def register_temp(
        self,
        table: Table,
        name: str,
        database: str = "default",
    ) -> None:
        """Register an in-memory table as a temp view (not persisted).

        The Spark analogue is ``createOrReplaceTempView``: the table is
        queryable like any other but lives only in this catalog instance and
        writes no bytes to the block store.  Re-registering replaces it.
        """
        if database not in self._databases:
            raise CatalogError(f"unknown database: {database}")
        key = (database, name)
        existing = self._schemas.get(key)
        if existing is not None and key in self._tables:
            for path in self._tables[key].values():
                if self._store.exists(path):
                    raise CatalogError(
                        f"{database}.{name} is a persisted table; "
                        f"drop it before registering a temp view"
                    )
        path = f"/tmpview/{database}/{name}"
        self._tables[key] = {self.DEFAULT_PARTITION: path}
        self._schemas[key] = table.schema
        self._temp[path] = table

    def load(
        self,
        name: str,
        database: str = "default",
        partition: str | None = None,
    ) -> Table:
        """Read a table (all partitions concatenated, or one partition)."""
        key = self._resolve(name, database)
        parts = self._tables[key]
        if partition is not None:
            if partition not in parts:
                raise CatalogError(
                    f"no partition {partition!r} in {key[0]}.{key[1]}; "
                    f"available: {sorted(parts)}"
                )
            return self._read(parts[partition])
        tables = [self._read(parts[p]) for p in sorted(parts)]
        out = tables[0]
        for t in tables[1:]:
            out = out.concat_rows(t)
        return out

    def scan(
        self,
        name: str,
        database: str = "default",
        columns: list[str] | tuple[str, ...] | None = None,
        predicate: list[ScanPredicate] | None = None,
    ) -> Table:
        """Read a table fetching only ``columns``, pruning by ``predicate``.

        ``columns`` (when given) projects the result in the given order;
        names the table does not have are ignored.  ``predicate`` is a list
        of AND-ed :class:`~.columnar.ScanPredicate` conjuncts used purely
        to *skip* v2 partitions whose zone maps prove no row can match —
        surviving partitions are returned unfiltered, so callers must still
        apply their full predicate.  v1 partitions and temp views never
        prune (no zone maps) and simply decode + project.
        """
        key = self._resolve(name, database)
        parts = self._tables[key]
        schema = self._schemas[key]
        sel: list[str] | None = None
        if columns is not None:
            sel = [c for c in columns if c in schema]
        health = self._store.health
        with span("catalog.scan", table=f"{key[0]}.{key[1]}") as sp:
            pieces: list[Table] = []
            for pname in sorted(parts):
                path = parts[pname]
                if path in self._temp or not path.endswith(MANIFEST_SUFFIX):
                    piece = self._read(path)
                    if sel is not None:
                        piece = piece.select(sel)
                    pieces.append(piece)
                    continue
                manifest = self._manifest(path)
                wanted = (
                    manifest.chunks
                    if sel is None
                    else [m for m in manifest.chunks if m.name in set(sel)]
                )
                if predicate and not manifest_allows(manifest, predicate):
                    health.partitions_pruned += 1
                    skipped = len(manifest.chunks)
                    saved = sum(m.decoded_bytes for m in manifest.chunks)
                    health.chunks_skipped += skipped
                    health.bytes_decoded_saved += saved
                    sp.incr("partitions_pruned")
                    sp.incr("chunks_skipped", skipped)
                    sp.incr("bytes_decoded_saved", saved)
                    metrics = get_metrics()
                    metrics.counter("columnar.partitions_pruned").inc()
                    metrics.counter("columnar.chunks_skipped").inc(skipped)
                    metrics.counter("columnar.bytes_decoded_saved").inc(saved)
                    continue
                projected_away = len(manifest.chunks) - len(wanted)
                if projected_away:
                    saved = sum(
                        m.decoded_bytes
                        for m in manifest.chunks
                        if m not in wanted
                    )
                    health.chunks_skipped += projected_away
                    health.bytes_decoded_saved += saved
                    sp.incr("chunks_skipped", projected_away)
                    sp.incr("bytes_decoded_saved", saved)
                    metrics = get_metrics()
                    metrics.counter("columnar.chunks_skipped").inc(
                        projected_away
                    )
                    metrics.counter("columnar.bytes_decoded_saved").inc(saved)
                pieces.append(self._read_v2(path, sel, manifest))
            if not pieces:
                out_schema = schema if sel is None else schema.select(sel)
                sp.incr("rows", 0)
                return Table.empty(out_schema)
            out = pieces[0]
            for piece in pieces[1:]:
                out = out.concat_rows(piece)
            sp.incr("rows", out.num_rows)
        return out

    def exists(self, name: str, database: str = "default") -> bool:
        return (database, name) in self._tables

    def clear_cache(self) -> None:
        """Drop cached deserialized tables/chunks and manifests (temp views
        are kept).

        Subsequent loads re-read from the block store — the path chaos
        tests exercise; ``save`` and ``load`` both repopulate the cache, so
        this only costs one deserialization per chunk.
        """
        self._cache.clear()
        self._manifests.clear()

    def drop_partition(
        self, name: str, partition: str, database: str = "default"
    ) -> None:
        """Drop one partition of a table, deleting its file(s).

        Dropping the last partition removes the table itself.  This is the
        retention primitive of the telemetry warehouse: expiring a run is a
        set of partition drops, never a rewrite of surviving rows.
        """
        key = self._resolve(name, database)
        parts = self._tables[key]
        if partition not in parts:
            raise CatalogError(
                f"no partition {partition!r} in {database}.{name}; "
                f"available: {sorted(parts)}"
            )
        path = parts.pop(partition)
        self._delete_partition_files(path)
        if not parts:
            del self._tables[key]
            del self._schemas[key]

    def drop(self, name: str, database: str = "default") -> None:
        """Drop a table and delete its files."""
        key = self._resolve(name, database)
        for path in self._tables[key].values():
            self._delete_partition_files(path)
        del self._tables[key]
        del self._schemas[key]

    def info(self, name: str, database: str = "default") -> TableInfo:
        """Describe a table."""
        key = self._resolve(name, database)
        return TableInfo(
            database=key[0],
            name=key[1],
            schema=self._schemas[key],
            partitions=tuple(sorted(self._tables[key])),
        )

    def tables(self, database: str = "default") -> list[str]:
        """Table names in one database, sorted."""
        return sorted(n for (db, n) in self._tables if db == database)

    def partitions(self, name: str, database: str = "default") -> list[str]:
        key = self._resolve(name, database)
        return sorted(self._tables[key])

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _resolve(self, name: str, database: str) -> tuple[str, str]:
        key = (database, name)
        if key not in self._tables:
            raise CatalogError(
                f"unknown table: {database}.{name}; "
                f"available: {self.tables(database)}"
            )
        return key

    def _delete_partition_files(self, path: str) -> None:
        """Delete every store file backing one partition registration."""
        if path.endswith(MANIFEST_SUFFIX):
            for chunk_path in self._store.list_files(chunk_dir(path)):
                self._store.delete(chunk_path)
        if self._store.exists(path):
            self._store.delete(path)
        self._cache.invalidate(path)
        self._manifests.pop(path, None)
        self._temp.pop(path, None)

    def _manifest(self, path: str) -> PartitionManifest:
        manifest = self._manifests.get(path)
        if manifest is None:
            manifest = PartitionManifest.from_bytes(self._store.read(path))
            self._manifests[path] = manifest
        return manifest

    def _read(self, path: str) -> Table:
        temp = self._temp.get(path)
        if temp is not None:
            return temp
        if path.endswith(MANIFEST_SUFFIX):
            return self._read_v2(path, None)
        cached = self._cache.get(path)
        if cached is not None:
            return cached
        table = Table.from_bytes(self._store.read(path))
        self._cache.put(path, table, table.nbytes)
        return table

    def _read_v2(
        self,
        path: str,
        columns: list[str] | None,
        manifest: PartitionManifest | None = None,
    ) -> Table:
        """Assemble a table from per-column chunks (cache keyed per chunk)."""
        if manifest is None:
            manifest = self._manifest(path)
        if columns is None:
            metas = list(manifest.chunks)
        else:
            metas = [m for c in columns if (m := manifest.chunk(c)) is not None]
        data = {}
        cols = []
        for meta in metas:
            arr = self._cache.get(meta.path)
            if arr is None:
                arr = decode_column(self._store.read(meta.path))
                self._cache.put(meta.path, arr, array_nbytes(arr))
            data[meta.name] = arr
            cols.append(meta.column)
        return Table(Schema(cols), data)

    @staticmethod
    def _path_base(database: str, name: str, partition: str) -> str:
        safe = partition.replace("=", "_").replace("/", "_")
        return f"/warehouse/{database}/{name}/{safe}"
