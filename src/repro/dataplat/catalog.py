"""A Hive-like metastore over the block store.

The paper lands raw BSS/OSS tables in HDFS as Hive tables and re-reads the
intermediate feature tables "many times".  :class:`Catalog` reproduces that:
it maps ``database.table`` (optionally partitioned, e.g. by month) onto block
store paths, caches deserialized tables, and exposes the listing / drop /
describe surface a metastore has.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import CatalogError
from .blockstore import DEFAULT_TABLE_CACHE_BYTES, BlockStore, TableCache
from .schema import Schema
from .table import Table


@dataclass(frozen=True)
class TableInfo:
    """Metadata about one catalog table."""

    database: str
    name: str
    schema: Schema
    partitions: tuple[str, ...]

    @property
    def qualified_name(self) -> str:
        return f"{self.database}.{self.name}"


class Catalog:
    """Metastore mapping logical tables to block-store files.

    Parameters
    ----------
    store:
        Backing :class:`BlockStore`; a private one is created if omitted.
    cache_bytes:
        Decoded-bytes budget of the LRU table cache.  Repeated month-window
        scans hit this cache instead of re-decoding npz blocks; hit/miss/
        eviction counters land on the store's :class:`StorageHealth`.  The
        cache is invalidated whenever the store reports a path's bytes may
        have changed (write, delete, repair, injected corruption).
    """

    #: Partition value used for unpartitioned tables.
    DEFAULT_PARTITION = "__all__"

    def __init__(
        self,
        store: BlockStore | None = None,
        cache_bytes: int = DEFAULT_TABLE_CACHE_BYTES,
    ) -> None:
        self._store = store if store is not None else BlockStore()
        self._tables: dict[tuple[str, str], dict[str, str]] = {}
        self._schemas: dict[tuple[str, str], Schema] = {}
        self._cache = TableCache(cache_bytes, health=self._store.health)
        #: Temp views live outside the LRU: they have no backing file, so
        #: eviction would lose them rather than cost a re-read.
        self._temp: dict[str, Table] = {}
        self._databases: set[str] = {"default"}
        self._store.add_invalidation_listener(self._cache.invalidate)

    @property
    def store(self) -> BlockStore:
        return self._store

    @property
    def table_cache(self) -> TableCache:
        """The decoded-table LRU (for monitoring and tests)."""
        return self._cache

    # ------------------------------------------------------------------
    # Databases
    # ------------------------------------------------------------------

    def create_database(self, name: str) -> None:
        """Create a database (idempotent)."""
        self._databases.add(name)

    def databases(self) -> list[str]:
        return sorted(self._databases)

    # ------------------------------------------------------------------
    # Tables
    # ------------------------------------------------------------------

    def save(
        self,
        table: Table,
        name: str,
        database: str = "default",
        partition: str | None = None,
        overwrite: bool = True,
    ) -> None:
        """Write ``table`` to the store and register it.

        A ``partition`` value (e.g. ``"month=3"``) appends/overwrites one
        partition; omitted means the whole unpartitioned table.
        """
        if database not in self._databases:
            raise CatalogError(f"unknown database: {database}")
        key = (database, name)
        partition = partition or self.DEFAULT_PARTITION
        existing = self._schemas.get(key)
        if existing is not None and existing != table.schema:
            raise CatalogError(
                f"schema mismatch for {database}.{name}: partition schema "
                f"{table.schema!r} != table schema {existing!r}"
            )
        path = self._path(database, name, partition)
        if self._store.exists(path) and not overwrite:
            raise CatalogError(f"partition exists: {database}.{name}/{partition}")
        self._store.write(path, table.to_bytes())
        self._tables.setdefault(key, {})[partition] = path
        self._schemas[key] = table.schema
        # The write invalidated any stale entry; cache the fresh table.
        self._cache.put(path, table, table.nbytes)

    def register_temp(
        self,
        table: Table,
        name: str,
        database: str = "default",
    ) -> None:
        """Register an in-memory table as a temp view (not persisted).

        The Spark analogue is ``createOrReplaceTempView``: the table is
        queryable like any other but lives only in this catalog instance and
        writes no bytes to the block store.  Re-registering replaces it.
        """
        if database not in self._databases:
            raise CatalogError(f"unknown database: {database}")
        key = (database, name)
        existing = self._schemas.get(key)
        if existing is not None and key in self._tables:
            for path in self._tables[key].values():
                if self._store.exists(path):
                    raise CatalogError(
                        f"{database}.{name} is a persisted table; "
                        f"drop it before registering a temp view"
                    )
        path = f"/tmpview/{database}/{name}"
        self._tables[key] = {self.DEFAULT_PARTITION: path}
        self._schemas[key] = table.schema
        self._temp[path] = table

    def load(
        self,
        name: str,
        database: str = "default",
        partition: str | None = None,
    ) -> Table:
        """Read a table (all partitions concatenated, or one partition)."""
        key = self._resolve(name, database)
        parts = self._tables[key]
        if partition is not None:
            if partition not in parts:
                raise CatalogError(
                    f"no partition {partition!r} in {key[0]}.{key[1]}; "
                    f"available: {sorted(parts)}"
                )
            return self._read(parts[partition])
        tables = [self._read(parts[p]) for p in sorted(parts)]
        out = tables[0]
        for t in tables[1:]:
            out = out.concat_rows(t)
        return out

    def exists(self, name: str, database: str = "default") -> bool:
        return (database, name) in self._tables

    def clear_cache(self) -> None:
        """Drop cached deserialized tables (temp views are kept).

        Subsequent loads re-read from the block store — the path chaos
        tests exercise; ``save`` and ``load`` both repopulate the cache, so
        this only costs one deserialization per table.
        """
        self._cache.clear()

    def drop_partition(
        self, name: str, partition: str, database: str = "default"
    ) -> None:
        """Drop one partition of a table, deleting its file.

        Dropping the last partition removes the table itself.  This is the
        retention primitive of the telemetry warehouse: expiring a run is a
        set of partition drops, never a rewrite of surviving rows.
        """
        key = self._resolve(name, database)
        parts = self._tables[key]
        if partition not in parts:
            raise CatalogError(
                f"no partition {partition!r} in {database}.{name}; "
                f"available: {sorted(parts)}"
            )
        path = parts.pop(partition)
        if self._store.exists(path):
            self._store.delete(path)
        self._cache.invalidate(path)
        self._temp.pop(path, None)
        if not parts:
            del self._tables[key]
            del self._schemas[key]

    def drop(self, name: str, database: str = "default") -> None:
        """Drop a table and delete its files."""
        key = self._resolve(name, database)
        for path in self._tables[key].values():
            if self._store.exists(path):
                self._store.delete(path)
            self._cache.invalidate(path)
            self._temp.pop(path, None)
        del self._tables[key]
        del self._schemas[key]

    def info(self, name: str, database: str = "default") -> TableInfo:
        """Describe a table."""
        key = self._resolve(name, database)
        return TableInfo(
            database=key[0],
            name=key[1],
            schema=self._schemas[key],
            partitions=tuple(sorted(self._tables[key])),
        )

    def tables(self, database: str = "default") -> list[str]:
        """Table names in one database, sorted."""
        return sorted(n for (db, n) in self._tables if db == database)

    def partitions(self, name: str, database: str = "default") -> list[str]:
        key = self._resolve(name, database)
        return sorted(self._tables[key])

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _resolve(self, name: str, database: str) -> tuple[str, str]:
        key = (database, name)
        if key not in self._tables:
            raise CatalogError(
                f"unknown table: {database}.{name}; "
                f"available: {self.tables(database)}"
            )
        return key

    def _read(self, path: str) -> Table:
        temp = self._temp.get(path)
        if temp is not None:
            return temp
        cached = self._cache.get(path)
        if cached is not None:
            return cached
        table = Table.from_bytes(self._store.read(path))
        self._cache.put(path, table, table.nbytes)
        return table

    @staticmethod
    def _path(database: str, name: str, partition: str) -> str:
        safe = partition.replace("=", "_").replace("/", "_")
        return f"/warehouse/{database}/{name}/{safe}.npz"
