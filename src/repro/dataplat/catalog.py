"""A Hive-like metastore over the block store.

The paper lands raw BSS/OSS tables in HDFS as Hive tables and re-reads the
intermediate feature tables "many times".  :class:`Catalog` reproduces that:
it maps ``database.table`` (optionally partitioned, e.g. by month) onto block
store paths, caches deserialized tables, and exposes the listing / drop /
describe surface a metastore has.

Partitions are stored in the **v2 columnar format** by default (one chunk
per column, zone maps in a JSON manifest — see :mod:`.columnar`); v1
whole-table npz partitions remain readable, negotiated per path.  The
:meth:`Catalog.scan` API reads only the column chunks a query references
and skips partitions whose zone maps cannot satisfy the pushed-down
conjuncts.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass

from ..errors import CatalogError, StorageError
from .blockstore import DEFAULT_TABLE_CACHE_BYTES, BlockStore, TableCache
from .executor import ExecutorBackend, resolve_backend
from .columnar import (
    CHUNK_SUFFIX,
    MANIFEST_SUFFIX,
    ChunkMeta,
    PartitionManifest,
    ScanPredicate,
    TableStats,
    array_nbytes,
    chunk_dir,
    column_stats_from_array,
    decode_column,
    encode_column,
    manifest_allows,
    rollup_table_stats,
)
from .journal import (
    Durability,
    RecoveryReport,
    TableJournal,
    partition_residue,
    recover_store,
    schema_doc,
    staging_dir,
    txn_floor,
)
from .observability import get_metrics, span
from .schema import Schema
from .table import Table

#: Below these floors a scan decodes serially even with a parallel decode
#: backend configured — fan-out overhead would dominate the decode work.
PARALLEL_DECODE_MIN_CHUNKS = 4
PARALLEL_DECODE_MIN_BYTES = 1 << 20


@dataclass(frozen=True)
class TableInfo:
    """Metadata about one catalog table."""

    database: str
    name: str
    schema: Schema
    partitions: tuple[str, ...]

    @property
    def qualified_name(self) -> str:
        return f"{self.database}.{self.name}"


class Catalog:
    """Metastore mapping logical tables to block-store files.

    Parameters
    ----------
    store:
        Backing :class:`BlockStore`; a private one is created if omitted.
    cache_bytes:
        Decoded-bytes budget of the LRU table cache.  v2 partitions cache
        **per column chunk**, so a two-column query over a 140-column table
        no longer evicts the whole cache; v1 partitions still cache as one
        decoded table per file.  Hit/miss/eviction counters land on the
        store's :class:`StorageHealth`, and the cache is invalidated
        whenever the store reports a path's bytes may have changed (write,
        delete, repair, injected corruption).
    default_format:
        ``"v2"`` (chunked columnar, the default) or ``"v1"`` (whole-table
        npz) for new :meth:`save` calls; either format stays readable.
    durability:
        Crash-safety configuration (see :class:`~.journal.Durability`).
        By default every save/drop runs as a journaled transaction with
        fsync barriers at the commit point; ``Durability.disabled()``
        restores the pre-journal direct write path.
    decode_backend:
        Optional :class:`~.executor.ExecutorBackend` (or kind string) that
        :meth:`scan` fans surviving partitions' column-chunk decodes out
        through, the same pattern as the wide-table prefetch.  ``None``
        (the default) keeps the serial decode path; small scans stay
        serial regardless (see ``PARALLEL_DECODE_MIN_CHUNKS``/``_BYTES``).
        Results and cache/bytes accounting are identical either way.
    """

    #: Partition value used for unpartitioned tables.
    DEFAULT_PARTITION = "__all__"

    def __init__(
        self,
        store: BlockStore | None = None,
        cache_bytes: int = DEFAULT_TABLE_CACHE_BYTES,
        default_format: str = "v2",
        durability: Durability | None = None,
        decode_backend: "ExecutorBackend | str | None" = None,
    ) -> None:
        if default_format not in ("v1", "v2"):
            raise CatalogError(
                f"unknown format {default_format!r}; expected 'v1' or 'v2'"
            )
        self._store = store if store is not None else BlockStore()
        self._format = default_format
        self._decode_backend = decode_backend
        self._durability = durability if durability is not None else Durability()
        self._tables: dict[tuple[str, str], dict[str, str]] = {}
        self._schemas: dict[tuple[str, str], Schema] = {}
        self._cache = TableCache(cache_bytes, health=self._store.health)
        #: Decoded manifests by path; tiny, so kept outside the LRU budget.
        self._manifests: dict[str, PartitionManifest] = {}
        #: Temp views live outside the LRU: they have no backing file, so
        #: eviction would lose them rather than cost a re-read.
        self._temp: dict[str, Table] = {}
        #: Table statistics memo for the binder, invalidated on any write.
        self._stats: dict[tuple[str, str], TableStats | None] = {}
        self._databases: set[str] = {"default"}
        #: Monotonic transaction id; lazily floored against whatever ids
        #: already exist on the store so versioned chunk names never reuse
        #: a live one.
        self._txn = 0
        self._txn_seeded = False
        #: What the last :meth:`open` recovery did (None for plain
        #: constructor use, where no recovery runs).
        self.last_recovery: RecoveryReport | None = None
        self._store.add_invalidation_listener(self._on_invalidated)

    def __getstate__(self):
        state = self.__dict__.copy()
        if isinstance(state.get("_decode_backend"), ExecutorBackend):
            # Backends own OS pool handles and never travel; a pickled
            # catalog copy (e.g. shipped to a shard worker) decodes
            # serially, which is always result-identical.
            state["_decode_backend"] = None
        return state

    @classmethod
    def open(
        cls,
        store: BlockStore,
        cache_bytes: int = DEFAULT_TABLE_CACHE_BYTES,
        default_format: str = "v2",
        durability: Durability | None = None,
    ) -> "Catalog":
        """Open a catalog over an existing store, running crash recovery.

        Journals are replayed (committed-but-unfinished transactions) or
        rolled back (uncommitted ones), staging/orphan files are swept,
        and registrations are rebuilt from journal checkpoints — falling
        back to the identity fields v2 manifests embed when no journal
        survives.  The recovery outcome lands in :attr:`last_recovery`,
        on ``recovery.*`` metric counters, and under a ``catalog.recover``
        span.
        """
        catalog = cls(store, cache_bytes, default_format, durability)
        catalog._recover()
        return catalog

    def _recover(self) -> None:
        with span("catalog.recover") as sp:
            recovered = recover_store(self._store, self._durability)
            self._tables = {k: dict(v) for k, v in recovered.tables.items()}
            self._schemas = dict(recovered.schemas)
            for database, _name in self._tables:
                self._databases.add(database)
            self._txn = max(self._txn, recovered.max_txn)
            self._txn_seeded = True
            report = recovered.report
            self.last_recovery = report
            metrics = get_metrics()
            for counter, value in report.counters().items():
                if value:
                    metrics.counter(counter).inc(value)
                    sp.incr(counter.split(".", 1)[1], value)
            sp.set_tag("clean", report.clean)

    @property
    def store(self) -> BlockStore:
        return self._store

    @property
    def durability(self) -> Durability:
        return self._durability

    @property
    def table_cache(self) -> TableCache:
        """The decoded-table/chunk LRU (for monitoring and tests)."""
        return self._cache

    def _on_invalidated(self, path: str) -> None:
        self._stats.clear()
        self._cache.invalidate(path)
        self._manifests.pop(path, None)

    # ------------------------------------------------------------------
    # Databases
    # ------------------------------------------------------------------

    def create_database(self, name: str) -> None:
        """Create a database (idempotent)."""
        self._databases.add(name)

    def databases(self) -> list[str]:
        return sorted(self._databases)

    # ------------------------------------------------------------------
    # Tables
    # ------------------------------------------------------------------

    def save(
        self,
        table: Table,
        name: str,
        database: str = "default",
        partition: str | None = None,
        overwrite: bool = True,
        format: str | None = None,
    ) -> None:
        """Write ``table`` to the store and register it.

        A ``partition`` value (e.g. ``"month=3"``) appends/overwrites one
        partition; omitted means the whole unpartitioned table.  ``format``
        overrides the catalog's default storage format for this partition.

        With journaling on (the default), the write runs as one
        crash-atomic transaction: files are staged, an intent + commit
        record pair makes the decision durable, staged files are renamed
        into place (the manifest last, as the atomic visibility switch)
        and only then are the replaced version's files deleted.  A crash
        anywhere leaves either the old or the new version, recoverable by
        :meth:`open`.
        """
        if database not in self._databases:
            raise CatalogError(f"unknown database: {database}")
        fmt = format or self._format
        if fmt not in ("v1", "v2"):
            raise CatalogError(f"unknown format {fmt!r}; expected 'v1' or 'v2'")
        key = (database, name)
        partition = partition or self.DEFAULT_PARTITION
        existing = self._schemas.get(key)
        if existing is not None and existing != table.schema:
            raise CatalogError(
                f"schema mismatch for {database}.{name}: partition schema "
                f"{table.schema!r} != table schema {existing!r}"
            )
        base = self._path_base(database, name, partition)
        path = base + (MANIFEST_SUFFIX if fmt == "v2" else ".npz")
        old = self._tables.get(key, {}).get(partition)
        if old is not None and self._store.exists(old) and not overwrite:
            raise CatalogError(f"partition exists: {database}.{name}/{partition}")
        self._crash("catalog.save.begin", f"{database}.{name}/{partition}")
        if self._durability.journal:
            self._save_journaled(key, partition, table, fmt, base, path, old)
        else:
            self._save_direct(key, partition, table, fmt, base, path, old)

    def _encode_chunks(
        self, table: Table, base: str, txn: int, stage: str | None
    ) -> tuple[list[ChunkMeta], dict[str, object], dict[str, bytes]]:
        """Encode v2 chunks with version-stamped final paths.

        Returns ``(metas, arrays-by-final-path, payloads-by-write-path)``
        where the write path is the staging path when ``stage`` is given,
        else the final path (direct mode).  Version-stamping final chunk
        names with the txn id is what lets an overwrite publish without
        ever clobbering a committed chunk file.
        """
        metas: list[ChunkMeta] = []
        arrays: dict[str, object] = {}
        payloads: dict[str, bytes] = {}
        for column in table.schema:
            arr = table.column(column.name)
            payload, zone = encode_column(column, arr)
            dst = f"{base}/{column.name}.{txn:08d}{CHUNK_SUFFIX}"
            write_path = f"{stage}/{column.name}{CHUNK_SUFFIX}" if stage else dst
            metas.append(
                ChunkMeta(
                    name=column.name,
                    ctype=column.ctype.value,
                    path=dst,
                    encoded_bytes=len(payload),
                    decoded_bytes=array_nbytes(arr),
                    zone=zone,
                )
            )
            arrays[dst] = arr
            payloads[write_path] = payload
        return metas, arrays, payloads

    def _save_journaled(
        self,
        key: tuple[str, str],
        partition: str,
        table: Table,
        fmt: str,
        base: str,
        path: str,
        old: str | None,
    ) -> None:
        database, name = key
        txn = self._next_txn()
        stage = staging_dir(database, name, txn)
        sync_every = self._durability.sync_every_write
        sync_commit = self._durability.sync_on_commit
        label = f"{database}.{name}/{partition}"
        moves: list[tuple[str, str]] = []
        crcs: dict[str, int] = {}
        arrays: dict[str, object] = {}
        manifest: PartitionManifest | None = None
        if fmt == "v1":
            payload = table.to_bytes()
            src = f"{stage}/table.npz"
            self._store.write(src, payload)
            if sync_every:
                self._store.fsync(src)
            crcs[src] = zlib.crc32(payload) & 0xFFFFFFFF
            moves.append((src, path))
        else:
            metas, arrays, payloads = self._encode_chunks(table, base, txn, stage)
            for (src, payload), meta in zip(payloads.items(), metas):
                self._store.write(src, payload)
                if sync_every:
                    self._store.fsync(src)
                crcs[src] = zlib.crc32(payload) & 0xFFFFFFFF
                moves.append((src, meta.path))
            manifest = PartitionManifest(
                rows=table.num_rows,
                chunks=tuple(metas),
                database=database,
                table=name,
                partition=partition,
            )
            manifest_payload = manifest.to_bytes()
            src = f"{stage}/manifest{MANIFEST_SUFFIX}"
            self._store.write(src, manifest_payload)
            if sync_every:
                self._store.fsync(src)
            crcs[src] = zlib.crc32(manifest_payload) & 0xFFFFFFFF
            # The manifest rename runs last: it is the visibility switch.
            moves.append((src, path))
        cleanup = (
            [f for f in self._partition_files_for_path(old) if f != path]
            if old is not None
            else []
        )
        journal = self._journal(database, name)
        intent_path = journal.append(
            "intent",
            {
                "op": "save",
                "partition": partition,
                "fmt": fmt,
                "path": path,
                "rows": table.num_rows,
                "schema": schema_doc(table.schema),
                "moves": [[s, d] for s, d in moves],
                "cleanup": cleanup,
                "crcs": crcs,
            },
            txn,
            sync=sync_every,
        )
        if sync_commit and not sync_every:
            # Barrier: staged data + intent must be durable before commit.
            for src, _dst in moves:
                self._store.fsync(src)
            self._store.fsync(intent_path)
        self._crash("catalog.save.barrier", label)
        journal.append("commit", {}, txn, sync=sync_commit)
        # Commit point: from here, recovery rolls this txn forward.
        self._crash("catalog.save.commit", label)
        for src, dst in moves:
            self._store.rename(src, dst)
            if sync_commit:
                self._store.fsync(dst)
        self._crash("catalog.save.published", label)
        for stale in cleanup:
            if self._store.exists(stale):
                self._store.delete(stale)
        self._crash("catalog.save.cleanup", label)
        journal.append("done", {}, txn, sync=False)
        self._finish_save(key, partition, path, old, table, manifest, arrays)
        self._maybe_compact(journal, key)

    def _save_direct(
        self,
        key: tuple[str, str],
        partition: str,
        table: Table,
        fmt: str,
        base: str,
        path: str,
        old: str | None,
    ) -> None:
        """The unjournaled write path (``Durability.disabled()``)."""
        database, name = key
        txn = self._next_txn()
        cleanup = (
            [f for f in self._partition_files_for_path(old) if f != path]
            if old is not None
            else []
        )
        manifest: PartitionManifest | None = None
        arrays: dict[str, object] = {}
        if fmt == "v1":
            self._store.write(path, table.to_bytes())
        else:
            metas, arrays, payloads = self._encode_chunks(table, base, txn, None)
            for dst, payload in payloads.items():
                self._store.write(dst, payload)
            manifest = PartitionManifest(
                rows=table.num_rows,
                chunks=tuple(metas),
                database=database,
                table=name,
                partition=partition,
            )
            self._store.write(path, manifest.to_bytes())
        for stale in cleanup:
            if self._store.exists(stale):
                self._store.delete(stale)
        self._finish_save(key, partition, path, old, table, manifest, arrays)

    def _finish_save(
        self,
        key: tuple[str, str],
        partition: str,
        path: str,
        old: str | None,
        table: Table,
        manifest: PartitionManifest | None,
        arrays: dict[str, object],
    ) -> None:
        """Update registration, schema, and caches after a publish."""
        if old is not None:
            self._temp.pop(old, None)
        self._tables.setdefault(key, {})[partition] = path
        self._schemas[key] = table.schema
        self._stats.pop(key, None)
        if manifest is None:
            # The write invalidated any stale entry; cache the fresh table.
            self._cache.put(path, table, table.nbytes)
        else:
            # The writes invalidated any stale entries; cache fresh chunks.
            self._manifests[path] = manifest
            for chunk_path, arr in arrays.items():
                self._cache.put(chunk_path, arr, array_nbytes(arr))

    def register_temp(
        self,
        table: Table,
        name: str,
        database: str = "default",
    ) -> None:
        """Register an in-memory table as a temp view (not persisted).

        The Spark analogue is ``createOrReplaceTempView``: the table is
        queryable like any other but lives only in this catalog instance and
        writes no bytes to the block store.  Re-registering replaces it.
        """
        if database not in self._databases:
            raise CatalogError(f"unknown database: {database}")
        key = (database, name)
        existing = self._schemas.get(key)
        if existing is not None and key in self._tables:
            for path in self._tables[key].values():
                if self._store.exists(path):
                    raise CatalogError(
                        f"{database}.{name} is a persisted table; "
                        f"drop it before registering a temp view"
                    )
        path = f"/tmpview/{database}/{name}"
        self._tables[key] = {self.DEFAULT_PARTITION: path}
        self._schemas[key] = table.schema
        self._temp[path] = table
        self._stats.pop(key, None)

    def load(
        self,
        name: str,
        database: str = "default",
        partition: str | None = None,
    ) -> Table:
        """Read a table (all partitions concatenated, or one partition)."""
        key = self._resolve(name, database)
        parts = self._tables[key]
        if partition is not None:
            if partition not in parts:
                raise CatalogError(
                    f"no partition {partition!r} in {key[0]}.{key[1]}; "
                    f"available: {sorted(parts)}"
                )
            return self._read(parts[partition])
        tables = [self._read(parts[p]) for p in sorted(parts)]
        out = tables[0]
        for t in tables[1:]:
            out = out.concat_rows(t)
        return out

    def scan(
        self,
        name: str,
        database: str = "default",
        columns: list[str] | tuple[str, ...] | None = None,
        predicate: list[ScanPredicate] | None = None,
    ) -> Table:
        """Read a table fetching only ``columns``, pruning by ``predicate``.

        ``columns`` (when given) projects the result in the given order;
        names the table does not have are ignored.  ``predicate`` is a list
        of AND-ed :class:`~.columnar.ScanPredicate` conjuncts used purely
        to *skip* v2 partitions whose zone maps prove no row can match —
        surviving partitions are returned unfiltered, so callers must still
        apply their full predicate.  v1 partitions and temp views never
        prune (no zone maps) and simply decode + project.
        """
        key = self._resolve(name, database)
        parts = self._tables[key]
        schema = self._schemas[key]
        sel: list[str] | None = None
        if columns is not None:
            sel = [c for c in columns if c in schema]
        health = self._store.health
        with span("catalog.scan", table=f"{key[0]}.{key[1]}") as sp:
            # Pass 1: prune, leaving an ordered mix of already-materialized
            # pieces (temp views, v1) and surviving v2 partitions.
            ordered: list[tuple[str, object]] = []
            survivors: list[tuple[str, object, list]] = []
            for pname in sorted(parts):
                path = parts[pname]
                if path in self._temp or not path.endswith(MANIFEST_SUFFIX):
                    piece = self._read(path)
                    if sel is not None:
                        piece = piece.select(sel)
                    ordered.append(("table", piece))
                    continue
                manifest = self._manifest(path)
                wanted = (
                    manifest.chunks
                    if sel is None
                    else [m for m in manifest.chunks if m.name in set(sel)]
                )
                if predicate and not manifest_allows(manifest, predicate):
                    health.partitions_pruned += 1
                    skipped = len(manifest.chunks)
                    saved = sum(m.decoded_bytes for m in manifest.chunks)
                    health.chunks_skipped += skipped
                    health.bytes_decoded_saved += saved
                    sp.incr("partitions_pruned")
                    sp.incr("chunks_skipped", skipped)
                    sp.incr("bytes_decoded_saved", saved)
                    metrics = get_metrics()
                    metrics.counter("columnar.partitions_pruned").inc()
                    metrics.counter("columnar.chunks_skipped").inc(skipped)
                    metrics.counter("columnar.bytes_decoded_saved").inc(saved)
                    continue
                projected_away = len(manifest.chunks) - len(wanted)
                if projected_away:
                    saved = sum(
                        m.decoded_bytes
                        for m in manifest.chunks
                        if m not in wanted
                    )
                    health.chunks_skipped += projected_away
                    health.bytes_decoded_saved += saved
                    sp.incr("chunks_skipped", projected_away)
                    sp.incr("bytes_decoded_saved", saved)
                    metrics = get_metrics()
                    metrics.counter("columnar.chunks_skipped").inc(
                        projected_away
                    )
                    metrics.counter("columnar.bytes_decoded_saved").inc(saved)
                ordered.append(("v2", path))
                survivors.append((path, manifest, list(wanted)))
            # Pass 2: prefetch-decode the survivors' missing chunks through
            # the configured backend (no-op without one, or below the
            # small-scan floors).  Cache hit/miss and bytes accounting stay
            # in _read_v2, so counters match the serial path exactly.
            decoded = self._prefetch_chunks(survivors)
            pieces: list[Table] = []
            manifests = {path: manifest for path, manifest, _ in survivors}
            for kind, value in ordered:
                if kind == "table":
                    pieces.append(value)
                else:
                    pieces.append(
                        self._read_v2(
                            value, sel, manifests[value], decoded=decoded
                        )
                    )
            if not pieces:
                out_schema = schema if sel is None else schema.select(sel)
                sp.incr("rows", 0)
                return Table.empty(out_schema)
            out = pieces[0]
            for piece in pieces[1:]:
                out = out.concat_rows(piece)
            sp.incr("rows", out.num_rows)
        return out

    def exists(self, name: str, database: str = "default") -> bool:
        return (database, name) in self._tables

    def clear_cache(self) -> None:
        """Drop cached deserialized tables/chunks and manifests (temp views
        are kept).

        Subsequent loads re-read from the block store — the path chaos
        tests exercise; ``save`` and ``load`` both repopulate the cache, so
        this only costs one deserialization per chunk.
        """
        self._cache.clear()
        self._manifests.clear()

    def drop_partition(
        self, name: str, partition: str, database: str = "default"
    ) -> None:
        """Drop one partition of a table, deleting its file(s).

        Dropping the last partition removes the table itself (and its
        journal).  This is the retention primitive of the telemetry
        warehouse: expiring a run is a set of partition drops, never a
        rewrite of surviving rows.  The deletion covers mixed-format
        residue too: a partition registered as v2 whose interrupted v1
        migration left an ``.npz`` sibling (or vice versa) loses both.
        """
        key = self._resolve(name, database)
        parts = self._tables[key]
        if partition not in parts:
            raise CatalogError(
                f"no partition {partition!r} in {database}.{name}; "
                f"available: {sorted(parts)}"
            )
        path = parts[partition]
        label = f"{database}.{name}/{partition}"
        self._stats.pop(key, None)
        self._crash("catalog.drop.begin", label)
        if path in self._temp or not self._durability.journal:
            parts.pop(partition)
            self._delete_partition_files(path)
            if not parts:
                del self._tables[key]
                del self._schemas[key]
                self._journal(database, name).destroy()
            return
        cleanup = self._partition_files_for_path(path)
        txn = self._next_txn()
        sync_every = self._durability.sync_every_write
        sync_commit = self._durability.sync_on_commit
        journal = self._journal(database, name)
        intent_path = journal.append(
            "intent",
            {
                "op": "drop",
                "partition": partition,
                "path": path,
                "cleanup": cleanup,
            },
            txn,
            sync=sync_every,
        )
        if sync_commit and not sync_every:
            self._store.fsync(intent_path)
        self._crash("catalog.drop.barrier", label)
        journal.append("commit", {}, txn, sync=sync_commit)
        self._crash("catalog.drop.commit", label)
        for stale in cleanup:
            if self._store.exists(stale):
                self._store.delete(stale)
        self._crash("catalog.drop.cleanup", label)
        journal.append("done", {}, txn, sync=False)
        parts.pop(partition)
        self._cache.invalidate(path)
        self._manifests.pop(path, None)
        if not parts:
            del self._tables[key]
            del self._schemas[key]
            journal.destroy()
        else:
            self._maybe_compact(journal, key)

    def drop(self, name: str, database: str = "default") -> None:
        """Drop a table and delete its files (one transaction per
        partition — a crash mid-drop leaves the surviving partitions
        intact and registered)."""
        key = self._resolve(name, database)
        for partition in sorted(self._tables[key]):
            self.drop_partition(name, partition, database)

    def info(self, name: str, database: str = "default") -> TableInfo:
        """Describe a table."""
        key = self._resolve(name, database)
        return TableInfo(
            database=key[0],
            name=key[1],
            schema=self._schemas[key],
            partitions=tuple(sorted(self._tables[key])),
        )

    def table_stats(
        self, name: str, database: str = "default"
    ) -> TableStats | None:
        """Statistics for the binder: row count + per-column stats.

        Temp views compute exact stats from the in-memory arrays; persisted
        v2 tables roll up their partition zone maps without decoding any
        chunk.  Tables with any v1 (npz) partition return ``None`` — the
        binder falls back to conservative defaults rather than paying a
        full decode on the planning path.  Results are memoized per table
        and invalidated by saves, drops, temp re-registration, and any
        store-level byte change.
        """
        key = self._resolve(name, database)
        if key in self._stats:
            return self._stats[key]
        stats: TableStats | None
        paths = [self._tables[key][p] for p in sorted(self._tables[key])]
        if all(p in self._temp for p in paths):
            # A temp view is a single in-memory partition; exact stats.
            table = self._temp[paths[0]]
            stats = TableStats(
                rows=table.num_rows,
                columns={
                    col: column_stats_from_array(table.column(col))
                    for col in table.schema.names
                },
                exact=True,
            )
        elif all(
            p.endswith(MANIFEST_SUFFIX) and p not in self._temp for p in paths
        ):
            stats = rollup_table_stats([self._manifest(p) for p in paths])
        else:
            stats = None
        self._stats[key] = stats
        return stats

    def tables(self, database: str = "default") -> list[str]:
        """Table names in one database, sorted."""
        return sorted(n for (db, n) in self._tables if db == database)

    def partitions(self, name: str, database: str = "default") -> list[str]:
        key = self._resolve(name, database)
        return sorted(self._tables[key])

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _resolve(self, name: str, database: str) -> tuple[str, str]:
        key = (database, name)
        if key not in self._tables:
            raise CatalogError(
                f"unknown table: {database}.{name}; "
                f"available: {self.tables(database)}"
            )
        return key

    def _crash(self, label: str, detail: str = "") -> None:
        """Named crash site for the crash-consistency sweep harness."""
        injector = self._store.injector
        if injector is not None and injector.crash_point is not None:
            injector.crash_point.hit(label, detail)

    def _journal(self, database: str, name: str) -> TableJournal:
        return TableJournal(self._store, database, name, self._durability)

    def _next_txn(self) -> int:
        if not self._txn_seeded:
            # Never reuse a txn id already on the store: versioned chunk
            # names derive from it, and a collision could overwrite a
            # committed chunk of the same partition.
            self._txn_seeded = True
            self._txn = max(self._txn, txn_floor(self._store))
        self._txn += 1
        return self._txn

    def _maybe_compact(self, journal: TableJournal, key: tuple[str, str]) -> None:
        if len(journal.record_files()) <= self._durability.compact_after:
            return
        self._crash("catalog.compact", f"{key[0]}.{key[1]}")
        journal.compact(
            self._next_txn(), self._tables.get(key, {}), self._schemas.get(key)
        )

    def partition_files(
        self,
        name: str,
        partition: str | None = None,
        database: str = "default",
    ) -> list[str]:
        """Store files backing one partition (or every partition).

        Includes mixed-format residue (an ``.npz`` sibling of a v2
        partition or vice versa), which is what drop and fsck must remove.
        Temp views contribute nothing — they have no backing files.
        """
        key = self._resolve(name, database)
        parts = self._tables[key]
        targets = [partition] if partition is not None else sorted(parts)
        files: set[str] = set()
        for pname in targets:
            if pname not in parts:
                raise CatalogError(
                    f"no partition {pname!r} in {database}.{name}; "
                    f"available: {sorted(parts)}"
                )
            files.update(self._partition_files_for_path(parts[pname]))
        return sorted(files)

    def _partition_files_for_path(self, path: str) -> list[str]:
        if path in self._temp:
            return []
        return partition_residue(self._store, path)

    def _delete_partition_files(self, path: str) -> None:
        """Delete every store file backing one partition registration."""
        for stale in self._partition_files_for_path(path):
            if self._store.exists(stale):
                self._store.delete(stale)
        self._cache.invalidate(path)
        self._manifests.pop(path, None)
        self._temp.pop(path, None)

    def _manifest(self, path: str) -> PartitionManifest:
        manifest = self._manifests.get(path)
        if manifest is None:
            manifest = PartitionManifest.from_bytes(self._store.read(path))
            self._manifests[path] = manifest
        return manifest

    def _read(self, path: str) -> Table:
        temp = self._temp.get(path)
        if temp is not None:
            return temp
        if path.endswith(MANIFEST_SUFFIX):
            return self._read_v2(path, None)
        cached = self._cache.get(path)
        if cached is not None:
            return cached
        table = Table.from_bytes(self._store.read(path))
        self._store.health.bytes_decoded += table.nbytes
        self._cache.put(path, table, table.nbytes)
        return table

    def _prefetch_chunks(self, survivors) -> dict | None:
        """Decode surviving partitions' missing chunks through the backend.

        ``survivors`` is ``[(path, manifest, wanted_metas)]`` from
        :meth:`scan`'s pruning pass.  Payload reads happen here in the
        parent (the store never travels to workers); only the pure
        ``decode_column`` calls fan out.  Cache lookups use :meth:`peek`
        so the hit/miss counters are untouched — :meth:`_read_v2` still
        performs the one counted ``get`` per chunk, and does the
        ``bytes_decoded``/``put`` accounting for prefetched arrays in its
        miss branch, exactly like a serial decode.
        """
        if self._decode_backend is None or not survivors:
            return None
        backend = resolve_backend(self._decode_backend)
        if backend.parallelism <= 1:
            return None
        metas = []
        seen: set[str] = set()
        for _, _, wanted in survivors:
            for meta in wanted:
                if meta.path in seen or self._cache.peek(meta.path) is not None:
                    continue
                seen.add(meta.path)
                metas.append(meta)
        if (
            len(metas) < PARALLEL_DECODE_MIN_CHUNKS
            or sum(m.decoded_bytes for m in metas) < PARALLEL_DECODE_MIN_BYTES
        ):
            return None
        payloads = [self._store.read(m.path) for m in metas]
        with span(
            "catalog.parallel_decode",
            chunks=len(metas),
            backend=backend.name,
        ):
            arrays = backend.map(decode_column, payloads)
        get_metrics().counter("columnar.parallel_decode_chunks").inc(
            len(metas)
        )
        return {m.path: arr for m, arr in zip(metas, arrays)}

    def _read_v2(
        self,
        path: str,
        columns: list[str] | None,
        manifest: PartitionManifest | None = None,
        decoded: dict | None = None,
    ) -> Table:
        """Assemble a table from per-column chunks (cache keyed per chunk).

        ``decoded`` optionally maps chunk paths to arrays a prefetch pass
        already decoded; consuming one still runs the miss-branch
        accounting (``bytes_decoded`` + cache insert) so counters match
        the serial decode path.
        """
        if manifest is None:
            manifest = self._manifest(path)
        if columns is None:
            metas = list(manifest.chunks)
        else:
            metas = [m for c in columns if (m := manifest.chunk(c)) is not None]
        data = {}
        cols = []
        for meta in metas:
            arr = self._cache.get(meta.path)
            if arr is None:
                if decoded is not None:
                    arr = decoded.pop(meta.path, None)
                if arr is None:
                    arr = decode_column(self._store.read(meta.path))
                self._store.health.bytes_decoded += array_nbytes(arr)
                self._cache.put(meta.path, arr, array_nbytes(arr))
            data[meta.name] = arr
            cols.append(meta.column)
        return Table(Schema(cols), data)

    @staticmethod
    def _path_base(database: str, name: str, partition: str) -> str:
        safe = partition.replace("=", "_").replace("/", "_")
        return f"/warehouse/{database}/{name}/{safe}"
