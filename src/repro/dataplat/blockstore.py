"""A mini-HDFS: namenode metadata over replicated block storage.

The paper stores its raw BSS/OSS tables on HDFS.  This module reproduces the
storage model in-process: files are split into fixed-size blocks, each block
is replicated onto ``replication`` distinct (simulated) datanodes, and a
namenode keeps the file → block → datanode mapping.  Datanode failures can be
injected to exercise re-replication, which the tests use for fault-injection
coverage.
"""

from __future__ import annotations

import base64
import hashlib
from collections import OrderedDict
from collections.abc import Callable
from dataclasses import dataclass, field

from ..errors import StorageError, TransientError
from .observability import current_span, get_metrics, span
from .resilience import FaultInjector, RetryPolicy, SimClock

#: Default block size.  Real HDFS uses 128 MB; our synthetic tables are small
#: so a smaller default keeps multiple blocks per file in play.
DEFAULT_BLOCK_SIZE = 1 << 20

#: Default decoded-bytes budget of the catalog's table cache (256 MB).
DEFAULT_TABLE_CACHE_BYTES = 256 << 20


@dataclass(frozen=True)
class BlockInfo:
    """Metadata for one block of a file."""

    block_id: str
    length: int
    replicas: tuple[int, ...]


@dataclass
class StorageHealth:
    """Counters for the store's self-healing read path and table cache."""

    corrupt_replicas_detected: int = 0
    replicas_repaired: int = 0
    replicas_recreated: int = 0
    transient_read_failures: int = 0
    read_retries: int = 0
    files_healed: int = 0
    #: fsync barriers issued by durability-aware writers (journal/catalog).
    fsyncs: int = 0
    #: Decoded-table cache traffic (maintained by the owning catalog).
    cache_hits: int = 0
    cache_misses: int = 0
    cache_evictions: int = 0
    #: v2 scan pruning (maintained by the owning catalog): column chunks
    #: never fetched (projection or zone-map skips), whole partitions
    #: skipped by zone maps, and the encoded bytes those skips saved.
    chunks_skipped: int = 0
    partitions_pruned: int = 0
    bytes_decoded_saved: int = 0
    #: Decoded bytes actually materialized on cache misses (v1 table blocks
    #: and v2 column chunks) — the flip side of ``bytes_decoded_saved``,
    #: attributed per operator by the SQL profile collector.
    bytes_decoded: int = 0

    @property
    def cache_hit_rate(self) -> float:
        """Fraction of table reads served without re-decoding npz blocks."""
        reads = self.cache_hits + self.cache_misses
        return self.cache_hits / reads if reads else 0.0


class TableCache:
    """LRU cache of decoded tables, bounded by decoded bytes.

    The paper re-reads intermediate feature tables "many times"; decoding
    the same npz blocks on every month-window scan dominated repeated
    reads.  This cache keeps the *decoded* tables, evicting least-recently
    used entries once the decoded-bytes budget is exceeded.  Hit/miss/
    eviction traffic is recorded on a :class:`StorageHealth` so monitoring
    sees cache effectiveness next to the repair counters.

    An entry larger than the whole budget is never admitted (it would just
    evict everything for a single-use tenancy).
    """

    def __init__(
        self,
        max_bytes: int = DEFAULT_TABLE_CACHE_BYTES,
        health: StorageHealth | None = None,
    ) -> None:
        if max_bytes < 0:
            raise StorageError(f"max_bytes must be >= 0, got {max_bytes}")
        self._max_bytes = max_bytes
        self._entries: OrderedDict[str, tuple[object, int]] = OrderedDict()
        self._bytes = 0
        self.health = health if health is not None else StorageHealth()

    @property
    def current_bytes(self) -> int:
        return self._bytes

    @property
    def max_bytes(self) -> int:
        return self._max_bytes

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: str) -> bool:
        return key in self._entries

    def get(self, key: str):
        """The cached value, or ``None``; counts a hit or miss."""
        entry = self._entries.get(key)
        if entry is None:
            self.health.cache_misses += 1
            get_metrics().counter("table_cache.misses").inc()
            current_span().incr("cache_misses")
            return None
        self._entries.move_to_end(key)
        self.health.cache_hits += 1
        get_metrics().counter("table_cache.hits").inc()
        current_span().incr("cache_hits")
        return entry[0]

    def peek(self, key: str):
        """The cached value without touching LRU order or counters."""
        entry = self._entries.get(key)
        return None if entry is None else entry[0]

    def put(self, key: str, value: object, nbytes: int) -> None:
        """Insert/replace an entry and evict LRU entries over budget."""
        if key in self._entries:
            self._bytes -= self._entries.pop(key)[1]
        if nbytes > self._max_bytes:
            # Too big to ever cache; make sure no stale copy survives.
            return
        self._entries[key] = (value, nbytes)
        self._bytes += nbytes
        while self._bytes > self._max_bytes and self._entries:
            _, (_, evicted) = self._entries.popitem(last=False)
            self._bytes -= evicted
            self.health.cache_evictions += 1
            get_metrics().counter("table_cache.evictions").inc()

    def invalidate(self, key: str) -> None:
        """Drop one entry (no-op if absent)."""
        entry = self._entries.pop(key, None)
        if entry is not None:
            self._bytes -= entry[1]

    def clear(self) -> None:
        self._entries.clear()
        self._bytes = 0


@dataclass(frozen=True)
class FileStatus:
    """Metadata for one file, as reported by the namenode."""

    path: str
    length: int
    block_size: int
    replication: int
    blocks: tuple[BlockInfo, ...] = field(repr=False)

    @property
    def num_blocks(self) -> int:
        return len(self.blocks)


class _DataNode:
    """One simulated datanode holding block payloads."""

    def __init__(self, node_id: int) -> None:
        self.node_id = node_id
        self.blocks: dict[str, bytes] = {}
        self.alive = True

    @property
    def used_bytes(self) -> int:
        return sum(len(b) for b in self.blocks.values())


class BlockStore:
    """Namenode + datanodes in one object.

    Parameters
    ----------
    num_nodes:
        Number of simulated datanodes.
    replication:
        Replicas per block (capped at ``num_nodes``).
    block_size:
        Bytes per block.
    fault_injector:
        Optional chaos source; when set, reads can fail transiently
        (``read_failure`` faults), which ``retry_policy`` absorbs.
    retry_policy:
        Backoff schedule for transient read failures; ``None`` means reads
        are attempted exactly once.
    clock:
        Simulated clock charged for backoff sleeps.
    auto_repair:
        When true (the default), the read path self-heals: corrupt replicas
        are rewritten from a checksum-verified copy and blocks that lost
        replicas to dead datanodes are re-replicated as soon as a read
        notices, instead of waiting for a manual :meth:`re_replicate`.
    volatile:
        When true, the store models an OS page cache: every mutation
        (write/delete/rename/truncate) is applied immediately but is
        *durable* only once :meth:`fsync` is called on the path.
        :meth:`crash` reverts all unsynced mutations to their last synced
        content — this is what makes the journal's fsync barriers testable
        rather than decorative.  The default (non-volatile) store treats
        every mutation as instantly durable and ``fsync`` as a counted
        no-op.
    """

    def __init__(
        self,
        num_nodes: int = 3,
        replication: int = 2,
        block_size: int = DEFAULT_BLOCK_SIZE,
        fault_injector: FaultInjector | None = None,
        retry_policy: RetryPolicy | None = None,
        clock: SimClock | None = None,
        auto_repair: bool = True,
        volatile: bool = False,
    ) -> None:
        if num_nodes < 1:
            raise StorageError(f"need at least one datanode, got {num_nodes}")
        if replication < 1:
            raise StorageError(f"replication must be >= 1, got {replication}")
        if block_size < 1:
            raise StorageError(f"block_size must be >= 1, got {block_size}")
        self._nodes = [_DataNode(i) for i in range(num_nodes)]
        self._replication = min(replication, num_nodes)
        self._block_size = block_size
        self._files: dict[str, FileStatus] = {}
        self._next_block = 0
        self._injector = fault_injector
        self._retry = retry_policy
        self._clock = clock if clock is not None else SimClock()
        self._auto_repair = auto_repair
        self._volatile = volatile
        #: Last-synced content per dirty path (``None`` = did not exist);
        #: only populated in volatile mode, first capture wins.
        self._preimages: dict[str, bytes | None] = {}
        self.health = StorageHealth()
        self._invalidation_listeners: list[Callable[[str], None]] = []

    @property
    def injector(self) -> FaultInjector | None:
        """The attached chaos source (crash points ride on it), if any."""
        return self._injector

    def _crash_hit(self, label: str, detail: str = "") -> None:
        if self._injector is not None and self._injector.crash_point is not None:
            self._injector.crash_point.hit(label, detail)

    def add_invalidation_listener(self, listener: Callable[[str], None]) -> None:
        """Register a callback fired with a path whenever its bytes may
        have changed (write, delete, repair, deliberate corruption) — the
        catalog uses this to evict stale decoded tables."""
        self._invalidation_listeners.append(listener)

    def _notify_invalidation(self, path: str) -> None:
        for listener in self._invalidation_listeners:
            listener(path)

    @property
    def corrupt_replicas_detected(self) -> int:
        """Checksum failures noticed on the read path (monitoring hook)."""
        return self.health.corrupt_replicas_detected

    # ------------------------------------------------------------------
    # File operations
    # ------------------------------------------------------------------

    def write(self, path: str, payload: bytes, overwrite: bool = True) -> FileStatus:
        """Write ``payload`` at ``path``, splitting into replicated blocks."""
        _validate_path(path)
        self._crash_hit("blockstore.write", path)
        with span("blockstore.write", path=path) as sp:
            if path in self._files and not overwrite:
                raise StorageError(f"file exists: {path}")
            self._capture(path)
            self._free_file(path)
            status = self._install_file(path, payload)
            self._notify_invalidation(path)
            sp.incr("bytes", len(payload))
            sp.incr("blocks", status.num_blocks)
            get_metrics().counter("blockstore.bytes_written").inc(len(payload))
        return status

    def rename(self, src: str, dst: str, overwrite: bool = True) -> FileStatus:
        """Atomically move ``src`` to ``dst`` (POSIX ``rename(2)`` model).

        The file's blocks move by metadata update only — no payload copy,
        no re-checksum — and the swap is all-or-nothing: readers observe
        either the old ``dst`` or the complete new one, never a torn mix.
        This is the catalog's commit primitive for publishing staged files.
        """
        _validate_path(src)
        _validate_path(dst)
        self._crash_hit("blockstore.rename", f"{src} -> {dst}")
        status = self.status(src)
        if src == dst:
            return status
        with span("blockstore.rename", src=src, dst=dst):
            if dst in self._files and not overwrite:
                raise StorageError(f"file exists: {dst}")
            self._capture(src)
            self._capture(dst)
            self._free_file(dst)
            moved = FileStatus(
                path=dst,
                length=status.length,
                block_size=status.block_size,
                replication=status.replication,
                blocks=status.blocks,
            )
            del self._files[src]
            self._files[dst] = moved
            self._notify_invalidation(src)
            self._notify_invalidation(dst)
            get_metrics().counter("blockstore.renames").inc()
        return moved

    def read(self, path: str) -> bytes:
        """Read the full contents of ``path`` from any live replica.

        Transient faults (when a :class:`FaultInjector` is attached) are
        retried per the store's :class:`RetryPolicy`; corrupt replicas are
        detected by checksum, skipped, and — with ``auto_repair`` —
        rewritten from a good copy.  If the read notices any block running
        below target replication (dead datanode), the file is re-replicated
        immediately.
        """
        status = self.status(path)

        def attempt() -> bytes:
            return b"".join(self._fetch_block(b) for b in status.blocks)

        def on_retry(retry_index: int, pause: float, exc: BaseException) -> None:
            self.health.read_retries += 1
            sp.incr("retries")

        with span("blockstore.read", path=path) as sp:
            if self._retry is None:
                payload = attempt()
            else:
                payload = self._retry.call(
                    attempt, clock=self._clock, on_retry=on_retry
                )
            if self._auto_repair and self._under_replicated(status):
                self._heal_file(path)
            sp.incr("bytes", len(payload))
            get_metrics().counter("blockstore.bytes_read").inc(len(payload))
        return payload

    def _under_replicated(self, status: FileStatus) -> bool:
        return any(
            sum(
                1
                for nid in block.replicas
                if self._nodes[nid].alive
                and block.block_id in self._nodes[nid].blocks
            )
            < self._replication
            for block in status.blocks
        )

    def status(self, path: str) -> FileStatus:
        """Namenode metadata for ``path``."""
        try:
            return self._files[path]
        except KeyError:
            raise StorageError(f"no such file: {path}") from None

    def exists(self, path: str) -> bool:
        return path in self._files

    def delete(self, path: str) -> None:
        """Delete ``path`` and free its blocks on all datanodes."""
        self.status(path)
        self._crash_hit("blockstore.delete", path)
        self._capture(path)
        self._free_file(path)
        self._notify_invalidation(path)

    def list_files(self, prefix: str = "/") -> list[str]:
        """All file paths under ``prefix``, sorted."""
        return sorted(p for p in self._files if p.startswith(prefix))

    # ------------------------------------------------------------------
    # Durability model
    # ------------------------------------------------------------------

    def fsync(self, path: str) -> None:
        """Make all mutations to ``path`` durable (survive :meth:`crash`).

        Counted even on the default non-volatile store so benchmarks and
        fsck see barrier traffic; lenient about paths that no longer exist
        (syncing a delete is itself a mutation to persist).
        """
        self.health.fsyncs += 1
        get_metrics().counter("blockstore.fsyncs").inc()
        self._preimages.pop(path, None)

    def fsync_all(self) -> None:
        """Make every pending mutation durable (one barrier)."""
        self.health.fsyncs += 1
        get_metrics().counter("blockstore.fsyncs").inc()
        self._preimages.clear()

    def crash(self) -> list[str]:
        """Simulate power loss: revert every unsynced mutation.

        Only meaningful on a ``volatile`` store (no-op otherwise).  Each
        dirty path reverts to its last fsynced content — or disappears, if
        it was created after the last sync.  Returns the affected paths.
        """
        if not self._volatile or not self._preimages:
            return []
        preimages, self._preimages = self._preimages, {}
        affected = sorted(preimages)
        for path in affected:
            self._free_file(path)
            pre = preimages[path]
            if pre is not None:
                self._install_file(path, pre)
            self._notify_invalidation(path)
        return affected

    def truncate(self, path: str, length: int) -> None:
        """Cut ``path`` to its first ``length`` bytes (torn-write model).

        Crash tests use this to simulate a write that made it only
        partially to disk: the tail of the last journal record or chunk
        file is sliced off at an arbitrary byte offset and recovery must
        still produce a valid catalog.
        """
        if length < 0:
            raise StorageError(f"length must be >= 0, got {length}")
        status = self.status(path)
        if length >= status.length:
            return
        payload = self._read_raw(path)[:length]
        self._capture(path)
        self._free_file(path)
        self._install_file(path, payload)
        self._notify_invalidation(path)

    @property
    def total_bytes(self) -> int:
        """Logical bytes stored (pre-replication)."""
        return sum(s.length for s in self._files.values())

    @property
    def physical_bytes(self) -> int:
        """Physical bytes across all datanodes (post-replication)."""
        return sum(n.used_bytes for n in self._nodes)

    # ------------------------------------------------------------------
    # Fault injection
    # ------------------------------------------------------------------

    def kill_node(self, node_id: int) -> None:
        """Simulate a datanode failure; its replicas become unreadable."""
        self._node(node_id).alive = False

    def revive_node(self, node_id: int) -> None:
        """Bring a dead datanode back (its blocks are intact)."""
        self._node(node_id).alive = True

    def re_replicate(self) -> int:
        """Restore the replication factor after node deaths.

        Returns the number of new replicas created.  Every recoverable
        block is healed even when others are lost; blocks with no live
        replica are collected and reported in one :class:`StorageError` at
        the end, so a partial scan never leaves earlier files half-restored
        behind a mid-scan exception.
        """
        created = 0
        lost: list[str] = []
        for path in list(self._files):
            file_created, file_lost = self._restore_file(path)
            created += file_created
            lost.extend(f"{blk} of {path}" for blk in file_lost)
        if lost:
            raise StorageError(
                f"{len(lost)} block(s) lost all replicas: {', '.join(lost)}"
            )
        return created

    def _restore_file(self, path: str) -> tuple[int, list[str]]:
        """Re-replicate one file's recoverable blocks.

        Returns ``(replicas created, block ids lost beyond recovery)``.
        Metadata is updated to reflect exactly what exists, including for
        partially-lost files (their healthy blocks are still healed).
        """
        status = self._files[path]
        live = [n for n in self._nodes if n.alive]
        created = 0
        lost: list[str] = []
        new_blocks = []
        for block in status.blocks:
            replicas = [
                nid
                for nid in block.replicas
                if self._nodes[nid].alive
                and block.block_id in self._nodes[nid].blocks
            ]
            if not replicas:
                lost.append(block.block_id)
                new_blocks.append(BlockInfo(block.block_id, block.length, ()))
                continue
            if len(replicas) < self._replication:
                payload = self._verified_payload(block, replicas)
                if payload is not None:
                    for node in live:
                        if len(replicas) >= self._replication:
                            break
                        if node.node_id in replicas:
                            continue
                        node.blocks[block.block_id] = payload
                        replicas.append(node.node_id)
                        created += 1
                        self.health.replicas_recreated += 1
            new_blocks.append(
                BlockInfo(block.block_id, block.length, tuple(replicas))
            )
        self._files[path] = FileStatus(
            path=status.path,
            length=status.length,
            block_size=status.block_size,
            replication=status.replication,
            blocks=tuple(new_blocks),
        )
        if created or lost:
            self._notify_invalidation(path)
        return created, lost

    def _heal_file(self, path: str) -> int:
        """Read-path trigger: re-replicate one file, best effort."""
        with span("blockstore.repair", path=path) as sp:
            created, lost = self._restore_file(path)
            if created and not lost:
                self.health.files_healed += 1
            sp.incr("replicas_created", created)
            get_metrics().counter("blockstore.replicas_recreated").inc(created)
        return created

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _node(self, node_id: int) -> _DataNode:
        if not 0 <= node_id < len(self._nodes):
            raise StorageError(f"no such datanode: {node_id}")
        return self._nodes[node_id]

    def _capture(self, path: str) -> None:
        """Record ``path``'s last-synced content before dirtying it.

        First capture wins: if the path is already dirty, its preimage is
        the synced content, not the intermediate dirty one.
        """
        if not self._volatile or path in self._preimages:
            return
        self._preimages[path] = (
            self._read_raw(path) if path in self._files else None
        )

    def _free_file(self, path: str) -> None:
        """Drop ``path``'s metadata and blocks; no-op if absent."""
        status = self._files.pop(path, None)
        if status is None:
            return
        for block in status.blocks:
            for node_id in block.replicas:
                self._nodes[node_id].blocks.pop(block.block_id, None)

    def _install_file(self, path: str, payload: bytes) -> FileStatus:
        """Store ``payload`` as fresh replicated blocks under ``path``."""
        blocks = []
        for offset in range(0, max(len(payload), 1), self._block_size):
            chunk = payload[offset : offset + self._block_size]
            blocks.append(self._store_block(chunk))
        status = FileStatus(
            path=path,
            length=len(payload),
            block_size=self._block_size,
            replication=self._replication,
            blocks=tuple(blocks),
        )
        self._files[path] = status
        return status

    def _read_raw(self, path: str) -> bytes:
        """Checksum-verified read without fault injection or telemetry."""
        status = self._files[path]
        parts = []
        for block in status.blocks:
            expected = block.block_id.rsplit("_", 1)[-1]
            chunk = None
            for node_id in block.replicas:
                node = self._nodes[node_id]
                candidate = node.blocks.get(block.block_id)
                if (
                    node.alive
                    and candidate is not None
                    and _digest(candidate) == expected
                ):
                    chunk = candidate
                    break
            if chunk is None:
                raise StorageError(f"no live replica for block {block.block_id}")
            parts.append(chunk)
        return b"".join(parts)

    # ------------------------------------------------------------------
    # Snapshots (fsck CLI interchange format)
    # ------------------------------------------------------------------

    def to_snapshot(self) -> dict:
        """A JSON-serializable snapshot of config + logical file contents."""
        return {
            "format": 1,
            "config": {
                "num_nodes": len(self._nodes),
                "replication": self._replication,
                "block_size": self._block_size,
            },
            "files": {
                path: base64.b64encode(self._read_raw(path)).decode("ascii")
                for path in sorted(self._files)
            },
        }

    @classmethod
    def from_snapshot(cls, doc: dict) -> "BlockStore":
        """Rebuild a store from :meth:`to_snapshot` output."""
        if doc.get("format") != 1:
            raise StorageError(
                f"unsupported snapshot format: {doc.get('format')!r}"
            )
        config = doc.get("config", {})
        store = cls(
            num_nodes=int(config.get("num_nodes", 3)),
            replication=int(config.get("replication", 2)),
            block_size=int(config.get("block_size", DEFAULT_BLOCK_SIZE)),
        )
        for path, encoded in sorted(doc.get("files", {}).items()):
            store.write(path, base64.b64decode(encoded))
        return store

    def _store_block(self, chunk: bytes) -> BlockInfo:
        block_id = f"blk_{self._next_block:012d}_{_digest(chunk)}"
        self._next_block += 1
        live = [n for n in self._nodes if n.alive]
        if not live:
            raise StorageError("no live datanodes")
        # Place replicas on the emptiest live nodes (simple balancer).
        live.sort(key=lambda n: n.used_bytes)
        targets = live[: self._replication]
        for node in targets:
            node.blocks[block_id] = chunk
        return BlockInfo(block_id, len(chunk), tuple(n.node_id for n in targets))

    def _verified_payload(
        self, block: BlockInfo, replicas: list[int]
    ) -> bytes | None:
        """A checksum-verified copy of ``block``, or None if all are bad.

        Never hands back a corrupt payload — re-replication must not
        multiply corruption.
        """
        expected = block.block_id.rsplit("_", 1)[-1]
        for node_id in replicas:
            chunk = self._nodes[node_id].blocks.get(block.block_id)
            if chunk is not None and _digest(chunk) == expected:
                return chunk
        return None

    def _fetch_block(self, block: BlockInfo) -> bytes:
        if self._injector is not None and self._injector.should("read_failure"):
            self.health.transient_read_failures += 1
            raise TransientError(
                f"injected transient read failure on block {block.block_id}"
            )
        expected = block.block_id.rsplit("_", 1)[-1]
        corrupt_on: list[_DataNode] = []
        good: bytes | None = None
        for node_id in block.replicas:
            node = self._nodes[node_id]
            if node.alive and block.block_id in node.blocks:
                chunk = node.blocks[block.block_id]
                if _digest(chunk) != expected:
                    # Corrupt replica: count it so monitoring and the
                    # repair path can see it, then try the next copy.
                    self.health.corrupt_replicas_detected += 1
                    corrupt_on.append(node)
                    continue
                good = chunk
                break
        if good is None:
            raise StorageError(f"no live replica for block {block.block_id}")
        if self._auto_repair:
            for node in corrupt_on:
                node.blocks[block.block_id] = good
                self.health.replicas_repaired += 1
                get_metrics().counter("blockstore.replicas_repaired").inc()
        return good

    def corrupt_block(self, path: str, block_index: int, node_id: int) -> None:
        """Flip bytes of one replica (fault injection for checksum paths)."""
        status = self.status(path)
        if not 0 <= block_index < len(status.blocks):
            raise StorageError(f"{path} has no block #{block_index}")
        block = status.blocks[block_index]
        node = self._node(node_id)
        if block.block_id not in node.blocks:
            raise StorageError(f"node {node_id} holds no replica of that block")
        payload = bytearray(node.blocks[block.block_id])
        if payload:
            payload[0] ^= 0xFF
        node.blocks[block.block_id] = bytes(payload)
        # A cached decoded copy would mask the corruption from read paths.
        self._notify_invalidation(path)


def _digest(chunk: bytes) -> str:
    return hashlib.sha1(chunk).hexdigest()[:10]


def _validate_path(path: str) -> None:
    if not path.startswith("/"):
        raise StorageError(f"paths must be absolute, got {path!r}")
    if "//" in path or path.endswith("/"):
        raise StorageError(f"malformed path: {path!r}")
