"""A mini-HDFS: namenode metadata over replicated block storage.

The paper stores its raw BSS/OSS tables on HDFS.  This module reproduces the
storage model in-process: files are split into fixed-size blocks, each block
is replicated onto ``replication`` distinct (simulated) datanodes, and a
namenode keeps the file → block → datanode mapping.  Datanode failures can be
injected to exercise re-replication, which the tests use for fault-injection
coverage.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field

from ..errors import StorageError

#: Default block size.  Real HDFS uses 128 MB; our synthetic tables are small
#: so a smaller default keeps multiple blocks per file in play.
DEFAULT_BLOCK_SIZE = 1 << 20


@dataclass(frozen=True)
class BlockInfo:
    """Metadata for one block of a file."""

    block_id: str
    length: int
    replicas: tuple[int, ...]


@dataclass(frozen=True)
class FileStatus:
    """Metadata for one file, as reported by the namenode."""

    path: str
    length: int
    block_size: int
    replication: int
    blocks: tuple[BlockInfo, ...] = field(repr=False)

    @property
    def num_blocks(self) -> int:
        return len(self.blocks)


class _DataNode:
    """One simulated datanode holding block payloads."""

    def __init__(self, node_id: int) -> None:
        self.node_id = node_id
        self.blocks: dict[str, bytes] = {}
        self.alive = True

    @property
    def used_bytes(self) -> int:
        return sum(len(b) for b in self.blocks.values())


class BlockStore:
    """Namenode + datanodes in one object.

    Parameters
    ----------
    num_nodes:
        Number of simulated datanodes.
    replication:
        Replicas per block (capped at ``num_nodes``).
    block_size:
        Bytes per block.
    """

    def __init__(
        self,
        num_nodes: int = 3,
        replication: int = 2,
        block_size: int = DEFAULT_BLOCK_SIZE,
    ) -> None:
        if num_nodes < 1:
            raise StorageError(f"need at least one datanode, got {num_nodes}")
        if replication < 1:
            raise StorageError(f"replication must be >= 1, got {replication}")
        if block_size < 1:
            raise StorageError(f"block_size must be >= 1, got {block_size}")
        self._nodes = [_DataNode(i) for i in range(num_nodes)]
        self._replication = min(replication, num_nodes)
        self._block_size = block_size
        self._files: dict[str, FileStatus] = {}
        self._next_block = 0

    # ------------------------------------------------------------------
    # File operations
    # ------------------------------------------------------------------

    def write(self, path: str, payload: bytes, overwrite: bool = True) -> FileStatus:
        """Write ``payload`` at ``path``, splitting into replicated blocks."""
        _validate_path(path)
        if path in self._files:
            if not overwrite:
                raise StorageError(f"file exists: {path}")
            self.delete(path)
        blocks = []
        for offset in range(0, max(len(payload), 1), self._block_size):
            chunk = payload[offset : offset + self._block_size]
            blocks.append(self._store_block(chunk))
        status = FileStatus(
            path=path,
            length=len(payload),
            block_size=self._block_size,
            replication=self._replication,
            blocks=tuple(blocks),
        )
        self._files[path] = status
        return status

    def read(self, path: str) -> bytes:
        """Read the full contents of ``path`` from any live replica."""
        status = self.status(path)
        parts = []
        for block in status.blocks:
            parts.append(self._fetch_block(block))
        return b"".join(parts)

    def status(self, path: str) -> FileStatus:
        """Namenode metadata for ``path``."""
        try:
            return self._files[path]
        except KeyError:
            raise StorageError(f"no such file: {path}") from None

    def exists(self, path: str) -> bool:
        return path in self._files

    def delete(self, path: str) -> None:
        """Delete ``path`` and free its blocks on all datanodes."""
        status = self.status(path)
        for block in status.blocks:
            for node_id in block.replicas:
                self._nodes[node_id].blocks.pop(block.block_id, None)
        del self._files[path]

    def list_files(self, prefix: str = "/") -> list[str]:
        """All file paths under ``prefix``, sorted."""
        return sorted(p for p in self._files if p.startswith(prefix))

    @property
    def total_bytes(self) -> int:
        """Logical bytes stored (pre-replication)."""
        return sum(s.length for s in self._files.values())

    @property
    def physical_bytes(self) -> int:
        """Physical bytes across all datanodes (post-replication)."""
        return sum(n.used_bytes for n in self._nodes)

    # ------------------------------------------------------------------
    # Fault injection
    # ------------------------------------------------------------------

    def kill_node(self, node_id: int) -> None:
        """Simulate a datanode failure; its replicas become unreadable."""
        self._node(node_id).alive = False

    def revive_node(self, node_id: int) -> None:
        """Bring a dead datanode back (its blocks are intact)."""
        self._node(node_id).alive = True

    def re_replicate(self) -> int:
        """Restore the replication factor after node deaths.

        Returns the number of new replicas created.  Blocks with no live
        replica cannot be recovered and raise :class:`StorageError`.
        """
        created = 0
        live = [n for n in self._nodes if n.alive]
        for path, status in list(self._files.items()):
            new_blocks = []
            for block in status.blocks:
                live_replicas = [
                    nid for nid in block.replicas if self._nodes[nid].alive
                ]
                if not live_replicas:
                    raise StorageError(
                        f"block {block.block_id} of {path} lost all replicas"
                    )
                replicas = list(live_replicas)
                if len(replicas) < self._replication:
                    payload = self._nodes[replicas[0]].blocks[block.block_id]
                    for node in live:
                        if len(replicas) >= self._replication:
                            break
                        if node.node_id in replicas:
                            continue
                        node.blocks[block.block_id] = payload
                        replicas.append(node.node_id)
                        created += 1
                new_blocks.append(
                    BlockInfo(block.block_id, block.length, tuple(replicas))
                )
            self._files[path] = FileStatus(
                path=status.path,
                length=status.length,
                block_size=status.block_size,
                replication=status.replication,
                blocks=tuple(new_blocks),
            )
        return created

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _node(self, node_id: int) -> _DataNode:
        if not 0 <= node_id < len(self._nodes):
            raise StorageError(f"no such datanode: {node_id}")
        return self._nodes[node_id]

    def _store_block(self, chunk: bytes) -> BlockInfo:
        block_id = f"blk_{self._next_block:012d}_{_digest(chunk)}"
        self._next_block += 1
        live = [n for n in self._nodes if n.alive]
        if not live:
            raise StorageError("no live datanodes")
        # Place replicas on the emptiest live nodes (simple balancer).
        live.sort(key=lambda n: n.used_bytes)
        targets = live[: self._replication]
        for node in targets:
            node.blocks[block_id] = chunk
        return BlockInfo(block_id, len(chunk), tuple(n.node_id for n in targets))

    def _fetch_block(self, block: BlockInfo) -> bytes:
        for node_id in block.replicas:
            node = self._nodes[node_id]
            if node.alive and block.block_id in node.blocks:
                chunk = node.blocks[block.block_id]
                if _digest(chunk) != block.block_id.rsplit("_", 1)[-1]:
                    continue  # corrupt replica; try the next one
                return chunk
        raise StorageError(f"no live replica for block {block.block_id}")

    def corrupt_block(self, path: str, block_index: int, node_id: int) -> None:
        """Flip bytes of one replica (fault injection for checksum paths)."""
        status = self.status(path)
        if not 0 <= block_index < len(status.blocks):
            raise StorageError(f"{path} has no block #{block_index}")
        block = status.blocks[block_index]
        node = self._node(node_id)
        if block.block_id not in node.blocks:
            raise StorageError(f"node {node_id} holds no replica of that block")
        payload = bytearray(node.blocks[block.block_id])
        if payload:
            payload[0] ^= 0xFF
        node.blocks[block.block_id] = bytes(payload)


def _digest(chunk: bytes) -> str:
    return hashlib.sha1(chunk).hexdigest()[:10]


def _validate_path(path: str) -> None:
    if not path.startswith("/"):
        raise StorageError(f"paths must be absolute, got {path!r}")
    if "//" in path or path.endswith("/"):
        raise StorageError(f"malformed path: {path!r}")
