"""Month-by-month telco world simulation.

The generative story (calibrated so each feature family of Section 4.1
carries the paper's relative amount of churn signal — see DESIGN.md §5):

* Every customer has persistent latent drivers: financial stress ``fin``
  (AR(1)), engagement ``eng`` (AR(1)), and cell-level service quality
  ``q_ps`` / ``q_cs`` (persistent with monthly wobble).
* Each month a churn-risk score sums the drivers, social contagion from last
  month's churners (strongest through the co-occurrence graph, weakest
  through the moribund message graph), and a tenure × spend interaction.
  The score plus logistic noise is thresholded at that month's churn-rate
  quantile: the exceeders will churn **next** month.
* Pre-churn behaviour is *abrupt*: customers about to churn degrade mostly
  in the final third of the current month (usage ramp, balance decay,
  porting-intent search queries, a small complaint bump), so features one
  month before churn are far more informative than two (Figure 8), and
  fresher feature windows are slightly more informative (Table 5).
* A churner spends their churn month in the recharge period (inbound only,
  no recharge within 15 days) and their slot is reborn as a new customer at
  month end — Table 1's dynamic balance.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..config import PAPER, ScaleConfig
from ..dataplat.catalog import Catalog
from ..dataplat.table import Table
from ..errors import SimulationError
from . import bss, oss
from .population import CustomerPopulation
from .social import SocialGraph, build_graphs, exposure
from .text import make_complaint_generator, make_search_generator

#: Tables emitted each month, in catalog naming.
MONTHLY_TABLES = (
    "user_base",
    "cdr_monthly",
    "cdr_daily",
    "billing",
    "recharge_period",
    "recharge_events",
    "complaints",
    "search_logs",
    "cs_kpi",
    "ps_kpi",
    "mr_locations",
)


@dataclass(frozen=True)
class SignalWeights:
    """Churn-hazard weights per latent driver.

    Defaults are calibrated so the per-family ΔPR-AUC ordering of Table 2
    holds: PS > CS > co-occurrence > call graph > search topics >
    second-order > complaint topics > message graph.
    """

    fin: float = 2.0
    engagement: float = 1.0
    ps_quality: float = 1.65
    cs_quality: float = 1.3
    cooc_exposure: float = 0.9
    call_exposure: float = 0.7
    msg_exposure: float = 0.02
    tenure_charge: float = 0.9
    #: Persistent per-location-cluster hazard offset (dorms churn together;
    #: family neighbourhoods do not) — this is what makes the MR location
    #: features (part of F3) and co-occurrence contagion informative.
    cluster_effect: float = 0.5
    noise: float = 0.55
    #: Extra complaint intensity for soon-to-churn customers.
    complaint_churn_bump: float = 0.1
    #: Lognormal noise on balance.
    balance_noise: float = 0.55
    #: Background probability anyone skips recharging this month.
    recharge_skip_background: float = 0.10
    #: Fraction of churners who are *loud*: decided leavers with strong
    #: pre-churn signatures (they stop topping up, run the balance down,
    #: go quiet, search for porting offers).  The near-perfect P@50k of
    #: Table 3 comes from this subpopulation filling the top of the
    #: ranking; *quiet* churners leave with only faint warnings, which is
    #: what keeps overall AUC below 1.
    loud_fraction: float = 0.55
    #: (loud, quiet) probability a churner's balance visibly collapses.
    balance_decay_prob: tuple[float, float] = (0.97, 0.35)
    #: (loud, quiet) log-balance drop when it collapses.
    balance_decay_log: tuple[float, float] = (1.8, 0.7)
    #: (loud, quiet) probability of skipping this month's recharge.
    recharge_skip_prob: tuple[float, float] = (0.9, 0.18)
    #: (loud, quiet) probability of emitting porting-intent queries.
    search_intent_prob: tuple[float, float] = (0.75, 0.2)
    #: (loud, quiet) mean usage fall-off over the month's final third.
    prechurn_decay: tuple[float, float] = (0.75, 0.2)


@dataclass(frozen=True)
class QualityIntervention:
    """A customer-centric network optimization (Section 5.3's action).

    From ``start_month`` on, the targeted slots' latent PS/CS service
    quality improves by the given amounts (in latent standard deviations).
    """

    start_month: int
    slots: np.ndarray
    ps_improvement: float = 1.0
    cs_improvement: float = 1.0

    def __post_init__(self) -> None:
        if self.start_month < 1:
            raise SimulationError(
                f"start_month must be >= 1, got {self.start_month}"
            )
        if self.ps_improvement < 0 or self.cs_improvement < 0:
            raise SimulationError("quality improvements must be >= 0")
        object.__setattr__(
            self, "slots", np.asarray(self.slots, dtype=np.int64)
        )


@dataclass
class MonthData:
    """Everything the simulator emits for one month."""

    month: int
    tables: dict[str, Table]
    imsi: np.ndarray
    #: Slots occupied by a customer in their churn month (recharge period).
    churning_now: np.ndarray
    #: Slots whose occupant will churn next month (= this month's label).
    churn_next: np.ndarray
    #: Slots usable for training/testing: active, not in recharge period.
    eligible: np.ndarray
    #: Ground-truth risk score (diagnostics/calibration only — not a feature).
    risk: np.ndarray
    #: Latent retention-offer affinity per slot (campaign-simulation truth;
    #: a deployed system never observes this column directly).
    offer_class: np.ndarray | None = None
    #: Churn reason per slot: 0 none, 1 financial, 2 service quality,
    #: 3 social contagion (diagnostics/ablations only).
    churn_reason: np.ndarray | None = None

    @property
    def churn_rate(self) -> float:
        return float(self.churning_now.mean())


@dataclass
class TelcoWorld:
    """The full simulated history."""

    months: list[MonthData]
    graphs: dict[str, SocialGraph]
    location_cluster: np.ndarray
    n_location_clusters: int
    population: CustomerPopulation
    #: Recharge-period table for month M+1 (labels the final month).
    final_recharge_period: Table
    #: Per-month postpaid churn counts (Figure 1 contrast segment).
    postpaid_rates: list[float]
    #: Per-month absolute churn-risk thresholds.  Pass these back into
    #: :meth:`TelcoSimulator.run` as ``fixed_thresholds`` so a
    #: counterfactual run keeps the same churn bar instead of re-drawing
    #: the quantile (which would make total churn zero-sum and displace
    #: avoided churn onto untreated customers).
    risk_thresholds: list[float] | None = None

    @property
    def n_months(self) -> int:
        return len(self.months)

    def month(self, t: int) -> MonthData:
        """1-indexed month access."""
        if not 1 <= t <= len(self.months):
            raise SimulationError(
                f"month {t} out of range 1..{len(self.months)}"
            )
        return self.months[t - 1]

    def recharge_period_for(self, t: int) -> Table:
        """Recharge-period table of month ``t`` (supports t = n_months + 1)."""
        if t == len(self.months) + 1:
            return self.final_recharge_period
        return self.month(t).tables["recharge_period"]

    def load_catalog(self, catalog: Catalog, database: str = "telco") -> None:
        """Write every monthly table into a platform catalog."""
        catalog.create_database(database)
        for data in self.months:
            for name, table in data.tables.items():
                catalog.save(
                    table, name, database=database, partition=f"month={data.month}"
                )
        catalog.save(
            self.final_recharge_period,
            "recharge_period",
            database=database,
            partition=f"month={len(self.months) + 1}",
        )


class TelcoSimulator:
    """Drives the world month by month.

    Parameters
    ----------
    scale:
        Population size, number of months, master seed.
    weights:
        Hazard calibration; defaults reproduce the paper's orderings.
    """

    def __init__(
        self,
        scale: ScaleConfig | None = None,
        weights: SignalWeights | None = None,
    ) -> None:
        self.scale = scale if scale is not None else ScaleConfig()
        self.weights = weights if weights is not None else SignalWeights()

    def run(
        self,
        intervention: "QualityIntervention | None" = None,
        fixed_thresholds: list[float] | None = None,
    ) -> TelcoWorld:
        """Simulate ``scale.months`` months and return the world.

        ``intervention`` optionally applies a *customer-centric network
        optimization* (Section 5.3's suggested action): from its start
        month on, the targeted slots' latent service quality improves by a
        fixed amount.  The RNG stream is identical with or without the
        intervention — the same draws are consumed either way — so two runs
        at the same seed form a matched counterfactual pair and the
        difference in realized churn is the intervention's causal effect.
        Pass the baseline run's ``risk_thresholds`` as ``fixed_thresholds``
        so the churn bar stays absolute (see :class:`TelcoWorld`).
        """
        rng = np.random.default_rng(self.scale.seed)
        n = self.scale.population
        w = self.weights
        pop = CustomerPopulation(n, rng)
        graphs, location_cluster = build_graphs(n, pop.town_id, rng)
        n_clusters = int(location_cluster.max()) + 1

        search_gen = make_search_generator()
        complaint_gen = make_complaint_generator()

        # Per-cluster churn climate: persistent across the whole simulation.
        cluster_offsets = w.cluster_effect * rng.normal(size=n_clusters)
        slot_cluster_offset = cluster_offsets[location_cluster]

        # Persistent latents.
        fin = rng.normal(size=n)
        eng = rng.normal(size=n)
        g_ps = rng.normal(size=n)  # higher = worse data service
        g_cs = rng.normal(size=n)  # higher = worse voice service

        # Burn-in: one hidden month so month 1 has contagion context.
        risk0, _, _, _ = self._risk(
            w, fin, eng, g_ps, g_cs,
            np.zeros(n), np.zeros(n), np.zeros(n),
            slot_cluster_offset, pop, rng,
        )
        churning_now = risk0 > np.quantile(risk0, 1 - PAPER.prepaid_churn_rate)
        pending_delay = self._draw_delays(churning_now, rng)

        months: list[MonthData] = []
        postpaid_rates: list[float] = []
        thresholds: list[float] = []
        churned_prev = churning_now.copy()
        prev_risk: np.ndarray | None = risk0
        for t in range(1, self.scale.months + 1):
            # --- latent dynamics -------------------------------------
            # Persistence calibrated to Figure 8: features one month before
            # churn are strongly informative, two months before noticeably
            # less, and the decay continues gently (not a cliff).
            fin = 0.85 * fin + np.sqrt(1 - 0.85**2) * rng.normal(size=n)
            eng = 0.9 * eng + np.sqrt(1 - 0.9**2) * rng.normal(size=n)
            if intervention is not None and t == intervention.start_month:
                # Network optimization: the targeted slots' cells are fixed
                # (latents are "badness", so improvement subtracts).
                g_ps[intervention.slots] -= intervention.ps_improvement
                g_cs[intervention.slots] -= intervention.cs_improvement
            ps_now = g_ps + 0.25 * rng.normal(size=n)
            cs_now = g_cs + 0.25 * rng.normal(size=n)

            # Contagion: during month t the current churners are visibly
            # gone (recharge period, inbound only); their graph neighbours
            # react and churn next month.  Label propagation (Section 4.1.2)
            # seeds from the same churners, so the feature sees the same
            # events the hazard uses.
            expo_cooc = _standardize(exposure(graphs["cooccurrence"], churning_now))
            expo_call = _standardize(exposure(graphs["call"], churning_now))
            expo_msg = _standardize(exposure(graphs["message"], churning_now))

            risk, c_fin, c_qual, c_social = self._risk(
                w, fin, eng, ps_now, cs_now,
                expo_cooc, expo_call, expo_msg,
                slot_cluster_offset, pop, rng,
            )
            # Dissatisfaction builds: the effective hazard blends this
            # month's stress with last month's, so pre-churn states are
            # partially visible months ahead (Figure 8's gentle decay).
            if prev_risk is not None:
                risk = 0.75 * risk + 0.25 * prev_risk
            prev_risk = risk
            rate_t = PAPER.prepaid_churn_rate + rng.normal(0, 0.004)
            rate_t = float(np.clip(rate_t, 0.06, 0.13))
            if fixed_thresholds is not None:
                threshold = fixed_thresholds[t - 1]
            else:
                threshold = float(np.quantile(risk, 1 - rate_t))
            thresholds.append(threshold)
            churn_next = risk > threshold
            eligible = ~churning_now

            # Why is each churner leaving?  The dominant hazard component
            # decides which observable channel carries their pre-churn
            # signature: money trouble shows up in BSS (balance, recharge),
            # bad service shows up in OSS KPIs and porting searches, social
            # contagion shows up mostly through the graphs.
            reason = np.zeros(n, dtype=np.int64)
            strongest = np.argmax(
                np.column_stack([c_fin, c_qual, c_social]), axis=1
            )
            reason[churn_next] = strongest[churn_next] + 1

            # --- behaviour -------------------------------------------
            month_effect = 1.0 + 0.04 * np.sin(0.9 * t) + 0.008 * t
            tables = self._emit_month(
                t, pop, w, rng,
                fin=fin, eng=eng, ps_now=ps_now, cs_now=cs_now,
                churn_next=churn_next, churning_now=churning_now,
                reason=reason,
                pending_delay=pending_delay,
                month_effect=month_effect,
                location_cluster=location_cluster,
                n_clusters=n_clusters,
                search_gen=search_gen, complaint_gen=complaint_gen,
            )
            months.append(
                MonthData(
                    month=t,
                    tables=tables,
                    imsi=pop.imsi.copy(),
                    churning_now=churning_now.copy(),
                    churn_next=churn_next.copy(),
                    eligible=eligible,
                    risk=risk,
                    offer_class=pop.offer_class.copy(),
                    churn_reason=reason,
                )
            )
            postpaid_rates.append(
                float(np.clip(
                    PAPER.postpaid_churn_rate + rng.normal(0, 0.003), 0.03, 0.08
                ))
            )

            # --- end of month: rebirth and hand-over -----------------
            pending_delay = self._draw_delays(churn_next, rng)
            reborn = np.flatnonzero(churning_now)
            pop.age_one_month()
            pop.rebirth(reborn)
            if len(reborn):
                fin[reborn] = rng.normal(size=len(reborn))
                eng[reborn] = rng.normal(size=len(reborn))
                # New occupants keep only a shadow of the slot's service
                # quality (they live near the same cells but use the network
                # differently) — this caps the survivorship correlation
                # between tenure and churn risk.
                k = len(reborn)
                g_ps[reborn] = 0.35 * g_ps[reborn] + np.sqrt(
                    1 - 0.35**2
                ) * rng.normal(size=k)
                g_cs[reborn] = 0.35 * g_cs[reborn] + np.sqrt(
                    1 - 0.35**2
                ) * rng.normal(size=k)
            churned_prev = churning_now
            churning_now = churn_next.copy()

        final_recharge = bss.recharge_period_table(
            pop.imsi, self.scale.months + 1, pending_delay
        )
        return TelcoWorld(
            months=months,
            graphs=graphs,
            location_cluster=location_cluster,
            n_location_clusters=n_clusters,
            population=pop,
            final_recharge_period=final_recharge,
            postpaid_rates=postpaid_rates,
            risk_thresholds=thresholds,
        )

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _risk(
        self,
        w: SignalWeights,
        fin: np.ndarray,
        eng: np.ndarray,
        ps_now: np.ndarray,
        cs_now: np.ndarray,
        expo_cooc: np.ndarray,
        expo_call: np.ndarray,
        expo_msg: np.ndarray,
        cluster_offset: np.ndarray,
        pop: CustomerPopulation,
        rng: np.random.Generator,
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        z_tenure = _standardize(-pop.innet_months.astype(np.float64))
        expected_charge = (
            pop.product_price * 0.3
            + pop.voice_level * np.exp(0.35 * eng) * 3.0
            + pop.data_level * np.exp(0.35 * eng) * 2.0
        )
        z_charge = _standardize(-expected_charge)
        interaction = _standardize(z_tenure * z_charge)
        n = len(fin)
        noise = rng.logistic(0, 1, size=n)
        c_fin = w.fin * fin + w.engagement * (-eng) + w.tenure_charge * interaction
        c_qual = w.ps_quality * ps_now + w.cs_quality * cs_now
        c_social = (
            w.cooc_exposure * expo_cooc
            + w.call_exposure * expo_call
            + w.msg_exposure * expo_msg
            + cluster_offset
        )
        risk = c_fin + c_qual + c_social + w.noise * noise
        return risk, c_fin, c_qual, c_social

    @staticmethod
    def _draw_delays(
        churn_next: np.ndarray, rng: np.random.Generator
    ) -> np.ndarray:
        """Days-to-recharge in next month's recharge period.

        Non-churners recharge quickly (truncated geometric ≤ 15 days);
        churners either never recharge (−1) or only after the 15-day grace.
        The 15-day labeling rule recovers ``churn_next`` exactly.
        """
        n = len(churn_next)
        delays = np.minimum(rng.geometric(0.3, size=n), 15)
        churners = np.flatnonzero(churn_next)
        never = rng.random(len(churners)) < 0.7
        late = 16 + rng.geometric(0.25, size=len(churners))
        delays[churners] = np.where(never, -1, np.minimum(late, 45))
        return delays.astype(np.int64)

    def _emit_month(
        self,
        t: int,
        pop: CustomerPopulation,
        w: SignalWeights,
        rng: np.random.Generator,
        *,
        fin: np.ndarray,
        eng: np.ndarray,
        ps_now: np.ndarray,
        cs_now: np.ndarray,
        churn_next: np.ndarray,
        churning_now: np.ndarray,
        reason: np.ndarray,
        pending_delay: np.ndarray,
        month_effect: float,
        location_cluster: np.ndarray,
        n_clusters: int,
        search_gen,
        complaint_gen,
    ) -> dict[str, Table]:
        n = pop.size
        imsi = pop.imsi

        eng_mult = np.exp(0.35 * eng)
        usage_mult = eng_mult * month_effect
        # Recharge-period customers can only receive calls.
        usage_mult = np.where(churning_now, usage_mult * 0.12, usage_mult)
        # Loud churners have decided to leave and show it; quiet churners
        # leave with only faint warnings.  Which channel a loud churner's
        # signature appears in depends on *why* they are leaving: financial
        # churners (reason 1) show it in balance/recharge (BSS), service-
        # quality churners (reason 2) in KPIs and porting searches (OSS),
        # social churners (reason 3) mostly through the graphs — this split
        # is what gives each feature family its unique lift (Table 2).
        loud = churn_next & (rng.random(n) < w.loud_fraction)
        quiet = churn_next & ~loud
        fin_reason = reason == 1

        def churn_knob(pair: tuple[float, float]) -> np.ndarray:
            return np.where(loud, pair[0], np.where(quiet, pair[1], 0.0))

        def channel_knob(
            pair: tuple[float, float], primary: np.ndarray, cross: float
        ) -> np.ndarray:
            """Full strength on the primary-reason channel, damped otherwise."""
            base = churn_knob(pair)
            return np.where(primary | ~churn_next, base, base * cross)

        decay = churn_knob(w.prechurn_decay) * rng.uniform(0.5, 1.5, n)
        decay = np.clip(decay, 0.0, 0.95)
        usage_mult = usage_mult * (1.0 - decay * 0.17)

        voice_usage = pop.voice_level * usage_mult
        data_usage = pop.data_level * usage_mult
        sms_usage = pop.sms_level * usage_mult

        # Quality in (0, 1): latents are "badness", so flip the sign.
        q_ps = _sigmoid(-ps_now)
        q_cs = _sigmoid(-cs_now)

        # Balance: the paper's #1 feature — low for the financially
        # stressed and collapsing (probabilistically) before churn.  Noise
        # keeps the collapse within the natural balance variation.
        log_balance = (
            np.log(30.0)
            + 0.25 * eng
            - 0.45 * fin
            + rng.normal(0, w.balance_noise, n)
        )
        collapses = rng.random(n) < channel_knob(
            w.balance_decay_prob, fin_reason, 0.35
        )
        background_dip = (~churn_next) & (rng.random(n) < 0.08)
        drop = np.where(collapses, churn_knob(w.balance_decay_log), 0.0)
        drop = np.where(background_dip, 0.7, drop)
        log_balance = log_balance - drop
        balance = np.exp(log_balance)
        balance = np.where(churning_now, balance * 0.3, balance)

        recharge_counts = 1 + rng.poisson(0.8, size=n)
        skip = (
            (rng.random(n) < channel_knob(w.recharge_skip_prob, fin_reason, 0.35))
            | (rng.random(n) < w.recharge_skip_background)
        )
        recharge_counts = np.where(skip, 0, recharge_counts)
        recharge_counts = np.where(churning_now, 0, recharge_counts)
        recharge_amounts = (
            pop.product_price
            * np.exp(-0.25 * fin)
            * rng.uniform(0.7, 1.3, size=n)
        )
        recharge_amounts = np.where(
            churn_next, recharge_amounts * 0.85, recharge_amounts
        )
        recharge_amounts = recharge_amounts * (recharge_counts > 0)

        # Complaints: weak quality signal plus a small pre-churn bump.
        complaint_rate = (
            0.06
            + 0.10 * _sigmoid(0.8 * (ps_now + cs_now))
            + w.complaint_churn_bump * churn_next
        )
        complaint_counts = rng.poisson(complaint_rate)

        # Porting-intent search: the F8 signal, strongest for customers
        # leaving over service quality (they shop for a better network).
        search_intent = np.where(
            rng.random(n)
            < channel_knob(w.search_intent_prob, reason == 2, 0.5),
            1.0,
            0.0,
        )
        search_intent = np.maximum(search_intent, 0.04)
        search_docs = search_gen.sample_docs(search_intent, 1.8, rng)

        complaint_intent = 0.3 * _sigmoid(0.8 * (ps_now + cs_now)) + 0.2 * churn_next
        has_complaint = complaint_counts > 0
        complaint_docs = ["" for _ in range(n)]
        idx = np.flatnonzero(has_complaint)
        if len(idx):
            docs = complaint_gen.sample_docs(complaint_intent[idx], 2.5, rng)
            for i, doc in zip(idx.tolist(), docs):
                complaint_docs[i] = doc

        tables = {
            "user_base": bss.user_base_table(pop),
            "cdr_monthly": bss.cdr_monthly_table(
                imsi, voice_usage, sms_usage, data_usage,
                complaint_counts, rng,
            ),
            "cdr_daily": bss.cdr_daily_table(
                imsi, t, voice_usage, sms_usage, data_usage, decay, rng,
            ),
            "billing": bss.billing_table(
                imsi, voice_usage, data_usage, sms_usage,
                balance, recharge_amounts, pop.product_price, rng,
            ),
            "recharge_period": bss.recharge_period_table(imsi, t, pending_delay),
            "recharge_events": bss.recharge_events_table(
                imsi, t, recharge_counts, recharge_amounts, rng
            ),
            "complaints": bss.complaints_table(
                imsi, t, complaint_counts, complaint_docs
            ),
            "search_logs": bss.search_logs_table(imsi, t, search_docs),
            "cs_kpi": oss.cs_kpi_table(imsi, q_cs, voice_usage, rng),
            "ps_kpi": oss.ps_kpi_table(imsi, q_ps, data_usage, rng),
            "mr_locations": oss.mr_locations_table(
                imsi, location_cluster, n_clusters, rng
            ),
        }
        return tables


def _standardize(values: np.ndarray) -> np.ndarray:
    std = values.std()
    if std < 1e-12:
        return np.zeros_like(values)
    return (values - values.mean()) / std


def _sigmoid(z: np.ndarray) -> np.ndarray:
    return 1.0 / (1.0 + np.exp(-np.clip(z, -35, 35)))
