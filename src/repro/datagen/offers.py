"""Retention-offer acceptance model (Table 6 substrate).

Section 5.5's four prepaid recharge offers, plus the latent per-customer
affinity drawn in :mod:`.population`:

=====  =======================================  ===========
class  offer                                    affinity
=====  =======================================  ===========
0      (refuses every offer)                    35% of base
1      100 cashback on recharge of 100          financially tight
2      50 cashback on recharge of 100           remainder
3      500 MB flux on recharge of 50            heavy data users
4      200-minute voice on recharge of 50       heavy voice users
=====  =======================================  ===========

A customer offered the *matching* offer accepts with high probability; the
wrong offer is mostly ignored.  Non-churners targeted by mistake recharge
anyway with their natural probability.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import SimulationError

#: Human-readable offer catalogue (index = offer id; 0 = no offer matches).
OFFER_CATALOG = (
    "no-offer-accepted",
    "100 cashback on recharge of 100",
    "50 cashback on recharge of 100",
    "500MB flux on recharge of 50",
    "200-minute voice call on recharge of 50",
)

N_OFFERS = len(OFFER_CATALOG) - 1


@dataclass(frozen=True)
class AcceptanceModel:
    """Probabilities governing campaign outcomes."""

    #: P(accept | offered the matching offer, affinity != 0).
    match_accept: float = 0.85
    #: P(accept | offered a non-matching offer, affinity != 0).
    mismatch_accept: float = 0.08
    #: P(accept | affinity == 0) for any offer.
    refuser_accept: float = 0.01
    #: P(a *non-churner* in the target list recharges regardless of offers).
    nonchurner_recharge: float = 0.85
    #: P(a true churner recharges with no offer at all) — near zero by the
    #: labeling rule (they would not be churners otherwise).
    churner_natural_recharge: float = 0.015

    def __post_init__(self) -> None:
        for name in (
            "match_accept",
            "mismatch_accept",
            "refuser_accept",
            "nonchurner_recharge",
            "churner_natural_recharge",
        ):
            value = getattr(self, name)
            if not 0 <= value <= 1:
                raise SimulationError(f"{name} must be a probability, got {value}")


def simulate_campaign(
    offer_class: np.ndarray,
    is_churner: np.ndarray,
    offered: np.ndarray,
    rng: np.random.Generator,
    model: AcceptanceModel | None = None,
) -> np.ndarray:
    """Outcome of one campaign wave.

    Parameters
    ----------
    offer_class:
        Latent affinity per targeted customer (0 = refuses all).
    is_churner:
        True churn label per targeted customer.
    offered:
        Offer id sent to each customer, in ``1..N_OFFERS``; 0 = no offer
        (the customer is in the control group A).
    rng:
        Randomness source.

    Returns
    -------
    Boolean array: recharged during the campaign window.
    """
    model = model if model is not None else AcceptanceModel()
    offer_class = np.asarray(offer_class, dtype=np.int64)
    is_churner = np.asarray(is_churner, dtype=bool)
    offered = np.asarray(offered, dtype=np.int64)
    if not (len(offer_class) == len(is_churner) == len(offered)):
        raise SimulationError("campaign arrays must share one length")
    if offered.min() < 0 or offered.max() > N_OFFERS:
        raise SimulationError(f"offer ids must be in 0..{N_OFFERS}")

    n = len(offered)
    p = np.zeros(n)
    # Non-churners mostly recharge regardless of campaign treatment.
    p[~is_churner] = model.nonchurner_recharge
    churners = is_churner
    control = offered == 0
    p[churners & control] = model.churner_natural_recharge
    treated = churners & ~control
    refusers = treated & (offer_class == 0)
    matched = treated & (offer_class == offered) & (offer_class != 0)
    mismatched = treated & ~refusers & ~matched
    p[refusers] = model.refuser_accept
    p[matched] = model.match_accept
    p[mismatched] = model.mismatch_accept
    return rng.random(n) < p


def expert_assignment(
    voice_hint: np.ndarray,
    data_hint: np.ndarray,
    rng: np.random.Generator,
) -> np.ndarray:
    """Month-8 style assignment: domain-knowledge rules of thumb.

    Operator experts skew offers toward observed usage but, per the paper,
    the results "are not satisfactory" — the rules are noisy and ignore
    financial need entirely, so treat this as a strong-ish random baseline.
    """
    n = len(voice_hint)
    offers = rng.integers(1, N_OFFERS + 1, size=n)
    heavy_data = data_hint > np.quantile(data_hint, 0.7)
    heavy_voice = (~heavy_data) & (voice_hint > np.quantile(voice_hint, 0.7))
    keep_rule = rng.random(n) < 0.5
    offers[heavy_data & keep_rule] = 3
    offers[heavy_voice & keep_rule] = 4
    return offers
