"""Raw record streams and the multi-vendor adaption layer.

The paper's data layer ingests vendor exports through a "multi-vendor data
adaption module" that normalizes field names/units before ETL loads standard
tables.  The simulator emits clean tables directly; this module converts
them back into *raw record streams* — including two simulated vendor
dialects with renamed fields, different units and occasional malformed rows
— so the ETL layer (:mod:`repro.dataplat.etl`) can be exercised end to end.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator

import numpy as np

from ..dataplat.etl import ETLJob
from ..dataplat.resilience import FaultInjector
from ..dataplat.schema import Schema
from ..dataplat.table import Table
from ..errors import ETLError, TransientError


def table_records(table: Table) -> Iterator[dict]:
    """Stream a table as plain record dicts (the clean vendor)."""
    names = table.schema.names
    for row in table.rows():
        yield dict(zip(names, row))


#: Vendor-B dialect for the CS KPI export: renamed fields, drop rate in
#: percent instead of fraction, delays in milliseconds instead of seconds.
VENDOR_B_CS_FIELDS = {
    "SUBSCRIBER_ID": "imsi",
    "CALL_SUCC_RATE": "perceived_call_success_rate",
    "CONN_DELAY_MS": "e2e_conn_delay",
    "DROP_RATE_PCT": "perceived_call_drop_rate",
    "MOS_UL": "voice_quality_mos_ul",
    "MOS_DL": "voice_quality_mos_dl",
    "MOS_IP": "voice_quality_ip_mos",
    "ONEWAY_CNT": "oneway_audio_cnt",
    "NOISE_CNT": "noise_cnt",
    "ECHO_CNT": "echo_cnt",
}


def vendor_b_cs_records(
    table: Table,
    rng: np.random.Generator,
    malformed_fraction: float = 0.01,
) -> Iterator[dict]:
    """The CS KPI table as vendor-B would export it.

    Fields are renamed per :data:`VENDOR_B_CS_FIELDS`, the drop rate is in
    percent, delays are in milliseconds, and a small fraction of rows is
    malformed (missing subscriber id) — the realistic dirt the ETL
    counters must surface.
    """
    if not 0 <= malformed_fraction < 1:
        raise ETLError(
            f"malformed_fraction must be in [0, 1), got {malformed_fraction}"
        )
    inverse = {v: k for k, v in VENDOR_B_CS_FIELDS.items()}
    for record in table_records(table):
        out = {}
        for name, value in record.items():
            vendor_name = inverse.get(name)
            if vendor_name is None:
                continue
            if name == "perceived_call_drop_rate":
                value = float(value) * 100.0
            elif name == "e2e_conn_delay":
                value = float(value) * 1000.0
            out[vendor_name] = value
        if rng.random() < malformed_fraction:
            out.pop("SUBSCRIBER_ID", None)
        yield out


def adapt_vendor_b_cs(record: dict) -> dict | None:
    """Multi-vendor adapter: vendor-B CS export → the standard schema.

    Returns None for records that cannot be attributed to a subscriber.
    """
    if "SUBSCRIBER_ID" not in record:
        return None
    out = {}
    for vendor_name, standard_name in VENDOR_B_CS_FIELDS.items():
        if vendor_name not in record:
            return None
        value = record[vendor_name]
        if standard_name == "perceived_call_drop_rate":
            value = float(value) / 100.0
        elif standard_name == "e2e_conn_delay":
            value = float(value) / 1000.0
        out[standard_name] = value
    return out


def flaky_records(
    records: Iterable[dict],
    injector: FaultInjector,
) -> Iterator[dict]:
    """Wrap a vendor record stream with injector-driven faults.

    Three fault kinds, drawn deterministically from the injector's seeded
    streams, mimic a misbehaving feed:

    * ``stream_failure`` — the connection dies mid-extract
      (:class:`~repro.errors.TransientError`; a retrying pipeline re-runs
      the extract from a fresh iterator);
    * ``record_drop`` — a record is silently lost;
    * ``record_garble`` — one field's value is replaced with an
      uncoercible marker, so schema validation rejects the row into the
      quarantine table.

    With a disabled injector the stream passes through unchanged.
    """
    for record in records:
        if injector.should("stream_failure"):
            raise TransientError("injected vendor stream failure")
        if injector.should("record_drop"):
            continue
        if injector.should("record_garble") and record:
            out = dict(record)
            # Deterministic target: garble the first field in sorted order.
            victim = sorted(out)[0]
            out[victim] = "<garbled>"
            yield out
            continue
        yield record


def cs_kpi_etl_job() -> ETLJob:
    """ETL job loading vendor-B CS exports into the standard ``cs_kpi``."""
    schema = Schema.of(
        imsi="int",
        perceived_call_success_rate="float",
        e2e_conn_delay="float",
        perceived_call_drop_rate="float",
        voice_quality_mos_ul="float",
        voice_quality_mos_dl="float",
        voice_quality_ip_mos="float",
        oneway_audio_cnt="int",
        noise_cnt="int",
        echo_cnt="int",
    )
    return ETLJob(schema, "cs_kpi", transform=adapt_vendor_b_cs)
