"""Customer population with rebirth.

Table 1 of the paper shows a *dynamic balance*: each month roughly as many
new prepaid customers join as churn, keeping the population nearly constant.
We model that with **slots**: the population is a fixed array of slots, each
occupied by one customer at a time.  When the occupant churns, the slot is
reborn as a brand-new customer (fresh demographics, tenure reset, new IMSI),
who inherits the slot's position in the social graphs (they move into the
same community — dorm, workplace, town).

All attributes are dense numpy arrays indexed by slot.
"""

from __future__ import annotations

import numpy as np

from ..errors import SimulationError

#: Number of distinct towns / selling areas / products in the synthetic world.
N_TOWNS = 24
N_SALES_AREAS = 12
N_PRODUCTS = 8


class CustomerPopulation:
    """Slot-indexed customer attributes with rebirth.

    Parameters
    ----------
    size:
        Number of slots (constant active population).
    rng:
        Source of randomness.
    """

    def __init__(self, size: int, rng: np.random.Generator) -> None:
        if size < 1:
            raise SimulationError(f"population size must be >= 1, got {size}")
        self.size = size
        self._rng = rng
        self._generation = np.zeros(size, dtype=np.int64)
        # IMSI = slot * 1000 + generation, unique per customer lifetime.
        self.age = np.zeros(size, dtype=np.int64)
        self.gender = np.zeros(size, dtype=np.int64)
        self.town_id = np.zeros(size, dtype=np.int64)
        self.sale_id = np.zeros(size, dtype=np.int64)
        self.pspt_type = np.zeros(size, dtype=np.int64)
        self.is_shanghai = np.zeros(size, dtype=np.int64)
        self.product_id = np.zeros(size, dtype=np.int64)
        self.product_price = np.zeros(size, dtype=np.float64)
        self.product_knd = np.zeros(size, dtype=np.int64)
        self.credit_value = np.zeros(size, dtype=np.float64)
        self.innet_months = np.zeros(size, dtype=np.int64)
        self.vip = np.zeros(size, dtype=np.int64)
        # Stable usage propensities (scale of a customer's typical behavior).
        self.voice_level = np.zeros(size, dtype=np.float64)
        self.data_level = np.zeros(size, dtype=np.float64)
        self.sms_level = np.zeros(size, dtype=np.float64)
        # Latent retention-offer affinity class (0 = refuses all offers).
        self.offer_class = np.zeros(size, dtype=np.int64)
        self._spawn(np.arange(size))
        # Existing customers start with realistic tenures.
        self.innet_months = rng.integers(1, 96, size=size)

    @property
    def imsi(self) -> np.ndarray:
        """Unique customer ids for the current occupants."""
        return np.arange(self.size) * 1000 + self._generation

    def slots_of(self, imsi: np.ndarray) -> np.ndarray:
        """Map IMSIs back to slot indices."""
        return np.asarray(imsi, dtype=np.int64) // 1000

    def rebirth(self, slots: np.ndarray) -> None:
        """Replace churned occupants with brand-new customers."""
        slots = np.asarray(slots, dtype=np.int64)
        if len(slots) == 0:
            return
        self._generation[slots] += 1
        self._spawn(slots)

    def age_one_month(self) -> None:
        """Advance every occupant's tenure by a month."""
        self.innet_months += 1

    def _spawn(self, slots: np.ndarray) -> None:
        rng = self._rng
        k = len(slots)
        self.age[slots] = np.clip(
            rng.normal(33, 12, size=k).astype(np.int64), 16, 80
        )
        self.gender[slots] = rng.integers(0, 2, size=k)
        self.town_id[slots] = rng.integers(0, N_TOWNS, size=k)
        self.sale_id[slots] = rng.integers(0, N_SALES_AREAS, size=k)
        self.pspt_type[slots] = rng.choice(
            [0, 1, 2], size=k, p=[0.85, 0.10, 0.05]
        )
        self.is_shanghai[slots] = (rng.random(k) < 0.3).astype(np.int64)
        self.product_id[slots] = rng.integers(0, N_PRODUCTS, size=k)
        self.product_price[slots] = 20.0 + 15.0 * self.product_id[slots] + rng.normal(
            0, 3, size=k
        )
        self.product_knd[slots] = self.product_id[slots] % 3
        self.credit_value[slots] = np.clip(rng.normal(60, 20, size=k), 0, 100)
        self.innet_months[slots] = 1
        self.vip[slots] = (rng.random(k) < 0.05).astype(np.int64)
        self.voice_level[slots] = np.exp(rng.normal(0.0, 0.5, size=k))
        self.data_level[slots] = np.exp(rng.normal(0.0, 0.6, size=k))
        self.sms_level[slots] = np.exp(rng.normal(-0.5, 0.6, size=k))
        self.offer_class[slots] = self._draw_offer_class(slots)

    def _draw_offer_class(self, slots: np.ndarray) -> np.ndarray:
        """Latent retention-offer affinity.

        Correlated with observable behavior so a retention classifier can
        beat random offer assignment (Table 6, month 9):

        * heavy data users want flux top-ups (class 3),
        * heavy voice users want free minutes (class 4),
        * financially tight customers want full cashback (class 1),
        * the remainder split between partial cashback (class 2) and
          "refuses everything" (class 0).
        """
        rng = self._rng
        k = len(slots)
        data = self.data_level[slots]
        voice = self.voice_level[slots]
        credit = self.credit_value[slots]
        cls = np.zeros(k, dtype=np.int64)
        roll = rng.random(k)
        refuses = roll < 0.35
        wants_flux = (~refuses) & (data > np.maximum(voice, 1.0))
        wants_voice = (~refuses) & (~wants_flux) & (voice > 1.0)
        wants_full_cash = (
            (~refuses) & (~wants_flux) & (~wants_voice) & (credit < 55)
        )
        cls[wants_flux] = 3
        cls[wants_voice] = 4
        cls[wants_full_cash] = 1
        rest = (~refuses) & (cls == 0)
        cls[rest] = 2
        # Blur the mapping so it is predictable but not deterministic.
        noise = rng.random(k) < 0.12
        cls[noise] = rng.integers(0, 5, size=int(noise.sum()))
        return cls
