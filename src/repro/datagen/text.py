"""Complaint and search-query text generation (Section 4.1.3 substrate).

Both corpora are topic-structured bags of words so that LDA can compress
them into informative topic features:

* **search queries** — most customers emit everyday topics (news, shopping,
  video, games); customers with churn intent mix in a *porting* topic
  (competitor names, hotline numbers, new-handset comparisons), which is the
  paper's observation that potential churners "search other operators'
  portal / hotline / new handset";
* **complaints** — topics over network quality, billing disputes and service
  attitude; pre-churn customers complain only slightly more (the paper finds
  complaints are a weak early signal).
"""

from __future__ import annotations

import numpy as np

from ..errors import SimulationError


def _make_vocab(prefix: str, topics: int, words_per_topic: int) -> list[str]:
    return [
        f"{prefix}_t{t}_w{w}"
        for t in range(topics)
        for w in range(words_per_topic)
    ]


class TopicCorpusGenerator:
    """Generates bag-of-word documents from a fixed topic-word structure.

    Topic ``intent_topic`` is the churn-signal topic; a document's mixture
    puts ``intent_strength`` of its mass there when the author has churn
    intent.
    """

    def __init__(
        self,
        prefix: str,
        n_topics: int,
        words_per_topic: int,
        intent_topic: int,
        doc_length: tuple[int, int],
        topic_sharpness: float = 0.85,
    ) -> None:
        if not 0 <= intent_topic < n_topics:
            raise SimulationError(
                f"intent_topic {intent_topic} out of range for {n_topics} topics"
            )
        self.vocab = _make_vocab(prefix, n_topics, words_per_topic)
        self.n_topics = n_topics
        self.words_per_topic = words_per_topic
        self.intent_topic = intent_topic
        self.doc_length = doc_length
        # Topic-word distributions: each topic concentrates on its own block
        # of the vocabulary with (1 - sharpness) mass spread uniformly.
        v = len(self.vocab)
        self._phi = np.full((n_topics, v), (1 - topic_sharpness) / v)
        for t in range(n_topics):
            block = slice(t * words_per_topic, (t + 1) * words_per_topic)
            self._phi[t, block] += topic_sharpness / words_per_topic
        self._phi /= self._phi.sum(axis=1, keepdims=True)
        self._phi_cdf = np.cumsum(self._phi, axis=1)

    @property
    def vocab_size(self) -> int:
        return len(self.vocab)

    def sample_docs(
        self,
        intent: np.ndarray,
        intent_strength: float,
        rng: np.random.Generator,
    ) -> list[str]:
        """One space-joined document per author.

        ``intent`` in [0, 1] per author scales how much of the document's
        topic mass shifts onto the intent topic.
        """
        intent = np.asarray(intent, dtype=np.float64)
        lo, hi = self.doc_length
        docs: list[str] = []
        base_alpha = np.ones(self.n_topics)
        for i in range(len(intent)):
            alpha = base_alpha.copy()
            alpha[self.intent_topic] += (
                intent[i] * intent_strength * self.n_topics
            )
            theta = rng.dirichlet(alpha)
            length = int(rng.integers(lo, hi + 1))
            topics = rng.choice(self.n_topics, size=length, p=theta)
            # Inverse-CDF word draws: one searchsorted per word, no O(V)
            # probability vector materialization.
            draws = rng.random(length)
            word_ids = [
                int(np.searchsorted(self._phi_cdf[t], u))
                for t, u in zip(topics.tolist(), draws.tolist())
            ]
            docs.append(
                " ".join(
                    self.vocab[min(w, self.vocab_size - 1)] for w in word_ids
                )
            )
        return docs


def make_search_generator() -> TopicCorpusGenerator:
    """Search-query corpus: 8 topics, topic 0 = porting / churn intent."""
    return TopicCorpusGenerator(
        prefix="srch",
        n_topics=8,
        words_per_topic=40,
        intent_topic=0,
        doc_length=(8, 24),
    )


def make_complaint_generator() -> TopicCorpusGenerator:
    """Complaint corpus: 5 topics, topic 0 = pre-churn frustration."""
    return TopicCorpusGenerator(
        prefix="cmpl",
        n_topics=5,
        words_per_topic=30,
        intent_topic=0,
        doc_length=(5, 15),
    )


def tokenize_docs(docs: list[str]) -> tuple[list[list[int]], dict[str, int]]:
    """Turn documents into word-id lists plus the vocabulary mapping.

    Matches the paper's preprocessing: a vocabulary is built from the corpus
    (they report 2 408 complaint / 15 974 search words after pruning) and
    each customer-month becomes one bag-of-words document.
    """
    vocab: dict[str, int] = {}
    out: list[list[int]] = []
    for doc in docs:
        ids = []
        for token in doc.split():
            if token not in vocab:
                vocab[token] = len(vocab)
            ids.append(vocab[token])
        out.append(ids)
    return out, vocab
