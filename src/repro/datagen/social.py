"""Social graph generation (Section 4.1.2 substrate).

Three undirected weighted graphs over customer slots:

* **call graph** — who calls whom; community structure (town-level circles)
  with weights = accumulated mutual call minutes;
* **message graph** — a sparse subset of call edges (the paper observes SMS
  has nearly died to OTT apps) with message counts as weights;
* **co-occurrence graph** — who shares a spatiotemporal cube with whom;
  built from *location clusters* (dorms, office blocks), denser and more
  cliquish than the call graph.

Graphs are attached to slots, not customers: a reborn customer moves into
the same community (same dorm/office), which is what keeps co-occurrence
contagion meaningful across rebirths.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import SimulationError


@dataclass(frozen=True)
class SocialGraph:
    """Edge list plus weights over ``n_nodes`` slots."""

    name: str
    edges: np.ndarray  # (m, 2) int64
    weights: np.ndarray  # (m,) float64
    n_nodes: int

    @property
    def num_edges(self) -> int:
        return len(self.edges)

    def neighbor_structure(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """CSR-ish (indptr, neighbors, weights) for exposure computation."""
        n = self.n_nodes
        degree = np.zeros(n, dtype=np.int64)
        np.add.at(degree, self.edges[:, 0], 1)
        np.add.at(degree, self.edges[:, 1], 1)
        indptr = np.concatenate([[0], np.cumsum(degree)])
        neighbors = np.zeros(indptr[-1], dtype=np.int64)
        weights = np.zeros(indptr[-1], dtype=np.float64)
        cursor = indptr[:-1].copy()
        for (a, b), w in zip(self.edges.tolist(), self.weights.tolist()):
            neighbors[cursor[a]] = b
            weights[cursor[a]] = w
            cursor[a] += 1
            neighbors[cursor[b]] = a
            weights[cursor[b]] = w
            cursor[b] += 1
        return indptr, neighbors, weights


def _community_edges(
    labels: np.ndarray,
    mean_degree: float,
    cross_fraction: float,
    rng: np.random.Generator,
) -> np.ndarray:
    """Random intra-community edges plus a sprinkle of cross edges."""
    n = len(labels)
    target_edges = int(n * mean_degree / 2)
    order = np.argsort(labels, kind="mergesort")
    sorted_labels = labels[order]
    boundaries = np.flatnonzero(np.diff(sorted_labels)) + 1
    groups = np.split(order, boundaries)
    edges: list[tuple[int, int]] = []
    seen: set[tuple[int, int]] = set()
    # Allocate intra-community edges proportionally to group size.
    intra_budget = int(target_edges * (1 - cross_fraction))
    total = sum(len(g) for g in groups if len(g) > 1)
    for group in groups:
        if len(group) < 2:
            continue
        share = max(1, int(round(intra_budget * len(group) / max(total, 1))))
        a = rng.choice(group, size=share)
        b = rng.choice(group, size=share)
        for u, v in zip(a.tolist(), b.tolist()):
            if u == v:
                continue
            key = (min(u, v), max(u, v))
            if key not in seen:
                seen.add(key)
                edges.append(key)
    cross_budget = target_edges - len(edges)
    if cross_budget > 0:
        a = rng.integers(0, n, size=cross_budget * 2)
        b = rng.integers(0, n, size=cross_budget * 2)
        for u, v in zip(a.tolist(), b.tolist()):
            if u == v or len(edges) >= target_edges:
                continue
            key = (min(u, v), max(u, v))
            if key not in seen:
                seen.add(key)
                edges.append(key)
    return np.asarray(edges, dtype=np.int64).reshape(-1, 2)


def build_graphs(
    n_slots: int,
    town_id: np.ndarray,
    rng: np.random.Generator,
    community_size: int = 40,
    cluster_size: int = 15,
) -> tuple[dict[str, SocialGraph], np.ndarray]:
    """Build the three graphs; returns them plus the location-cluster labels.

    ``location_cluster`` (the second return) also drives the MR trajectory
    features and the co-occurrence contagion in the simulator.
    """
    if n_slots < 2:
        raise SimulationError(f"need at least 2 slots, got {n_slots}")
    # Call circles: nested inside towns, ~community_size people each.
    n_communities = max(1, n_slots // community_size)
    call_community = (
        town_id * n_communities + rng.integers(0, n_communities, size=n_slots)
    )
    _, call_community = np.unique(call_community, return_inverse=True)
    call_edges = _community_edges(call_community, 8.0, 0.10, rng)
    call_weights = np.exp(rng.normal(3.0, 0.8, size=len(call_edges)))

    # Message graph: a sparse subset of call edges ("everyone uses OTT").
    keep = rng.random(len(call_edges)) < 0.35
    msg_edges = call_edges[keep]
    msg_weights = np.maximum(rng.poisson(4, size=len(msg_edges)), 1).astype(
        np.float64
    )

    # Location clusters (dorm/office): tighter groups, denser edges.
    n_clusters = max(1, n_slots // cluster_size)
    location_cluster = rng.integers(0, n_clusters, size=n_slots)
    cooc_edges = _community_edges(location_cluster, 10.0, 0.03, rng)
    cooc_weights = np.exp(rng.normal(2.0, 0.5, size=len(cooc_edges)))

    graphs = {
        "call": SocialGraph("call", call_edges, call_weights, n_slots),
        "message": SocialGraph("message", msg_edges, msg_weights, n_slots),
        "cooccurrence": SocialGraph(
            "cooccurrence", cooc_edges, cooc_weights, n_slots
        ),
    }
    return graphs, location_cluster


def exposure(
    graph: SocialGraph, churned: np.ndarray
) -> np.ndarray:
    """Weighted fraction of each node's neighbours who churned.

    This is the contagion signal: ``sum_n w_mn churned_n / sum_n w_mn``.
    Nodes without neighbours get 0.
    """
    churned = np.asarray(churned, dtype=np.float64)
    if len(churned) != graph.n_nodes:
        raise SimulationError(
            f"churned has {len(churned)} entries for {graph.n_nodes} nodes"
        )
    hit = np.zeros(graph.n_nodes)
    total = np.zeros(graph.n_nodes)
    a = graph.edges[:, 0]
    b = graph.edges[:, 1]
    np.add.at(hit, a, graph.weights * churned[b])
    np.add.at(hit, b, graph.weights * churned[a])
    np.add.at(total, a, graph.weights)
    np.add.at(total, b, graph.weights)
    return np.divide(hit, np.maximum(total, 1e-12))
