"""OSS table emitters: CS KPI/KQI, PS KPI/KQI, MR trajectories.

Section 4.1.1 of the paper lists 9 CS voice-quality indicators and 15 PS
data-service indicators plus the customer's 5 most frequent locations.  The
emitters below derive every indicator from the simulator's latent service
quality ``q_cs`` / ``q_ps`` (each in (0, 1), higher = better) plus activity
levels, with indicator-specific noise — so the KPI columns are correlated
reflections of quality, not copies of it.
"""

from __future__ import annotations

import numpy as np

from ..dataplat.table import Table


def cs_kpi_table(
    imsi: np.ndarray,
    q_cs: np.ndarray,
    voice_usage: np.ndarray,
    rng: np.random.Generator,
) -> Table:
    """The 9 CS voice KPI/KQI features of Section 4.1.1."""
    n = len(imsi)

    def jitter(spread: float) -> np.ndarray:
        return rng.normal(0, spread, size=n)

    call_succ = np.clip(0.90 + 0.09 * q_cs + jitter(0.015), 0.5, 1.0)
    drop_rate = np.clip(0.06 * (1 - q_cs) + jitter(0.006), 0.0, 0.3)
    conn_delay = np.clip(2.0 + 4.0 * (1 - q_cs) + jitter(0.4), 0.5, 12.0)
    mos_ul = np.clip(2.8 + 1.8 * q_cs + jitter(0.18), 1.0, 5.0)
    mos_dl = np.clip(2.9 + 1.8 * q_cs + jitter(0.18), 1.0, 5.0)
    ip_mos = np.clip(3.0 + 1.6 * q_cs + jitter(0.2), 1.0, 5.0)
    activity = np.maximum(voice_usage, 0.05)
    oneway = rng.poisson(np.maximum(2.5 * (1 - q_cs) * activity, 0.0))
    noise_cnt = rng.poisson(np.maximum(2.0 * (1 - q_cs) * activity, 0.0))
    echo_cnt = rng.poisson(np.maximum(1.0 * (1 - q_cs) * activity, 0.0))
    return Table.from_arrays(
        imsi=imsi,
        perceived_call_success_rate=call_succ,
        e2e_conn_delay=conn_delay,
        perceived_call_drop_rate=drop_rate,
        voice_quality_mos_ul=mos_ul,
        voice_quality_mos_dl=mos_dl,
        voice_quality_ip_mos=ip_mos,
        oneway_audio_cnt=oneway.astype(np.int64),
        noise_cnt=noise_cnt.astype(np.int64),
        echo_cnt=echo_cnt.astype(np.int64),
    )


def ps_kpi_table(
    imsi: np.ndarray,
    q_ps: np.ndarray,
    data_usage: np.ndarray,
    rng: np.random.Generator,
) -> Table:
    """The 15 PS data-service KPI/KQI features of Section 4.1.1.

    Throughput indicators also scale with the customer's data *activity*,
    reproducing the paper's observation that ``page_download_throughput``
    shrinks for churners "since churners often become inactive in data
    usage" — the column mixes network quality with engagement.
    """
    n = len(imsi)

    def jitter(spread: float) -> np.ndarray:
        return rng.normal(0, spread, size=n)

    activity = np.clip(
        data_usage / max(float(np.median(data_usage)), 1e-9), 0.05, 4.0
    ) ** 0.35
    page_resp_succ = np.clip(0.88 + 0.11 * q_ps + jitter(0.02), 0.4, 1.0)
    page_resp_delay = np.clip(0.8 + 3.5 * (1 - q_ps) + jitter(0.3), 0.2, 10.0)
    page_browse_succ = np.clip(0.85 + 0.14 * q_ps + jitter(0.02), 0.4, 1.0)
    page_browse_delay = np.clip(1.5 + 5.0 * (1 - q_ps) + jitter(0.5), 0.3, 15.0)
    throughput = np.maximum(
        (600.0 + 2400.0 * q_ps) * activity * np.exp(jitter(0.12)),
        10.0,
    )
    return Table.from_arrays(
        imsi=imsi,
        page_response_success_rate=page_resp_succ,
        page_response_delay=page_resp_delay,
        page_browsing_success_rate=page_browse_succ,
        page_browsing_delay=page_browse_delay,
        page_download_throughput=throughput,
        stream_success_rate=np.clip(0.9 + 0.09 * q_ps + jitter(0.02), 0.4, 1.0),
        stream_start_delay=np.clip(1.0 + 4.0 * (1 - q_ps) + jitter(0.4), 0.2, 12.0),
        stream_throughput=np.maximum(
            (400.0 + 1800.0 * q_ps) * activity * np.exp(jitter(0.12)),
            10.0,
        ),
        email_success_rate=np.clip(0.92 + 0.07 * q_ps + jitter(0.02), 0.4, 1.0),
        email_delay=np.clip(0.6 + 2.0 * (1 - q_ps) + jitter(0.25), 0.1, 8.0),
        l4_ul_throughput=np.maximum(
            (200.0 + 900.0 * q_ps) * activity * np.exp(jitter(0.15)), 5.0
        ),
        l4_dw_throughput=np.maximum(
            (700.0 + 2600.0 * q_ps) * activity * np.exp(jitter(0.15)),
            10.0,
        ),
        tcp_rtt=np.clip(40.0 + 180.0 * (1 - q_ps) + jitter(15.0), 5.0, 500.0),
        tcp_conn_success_rate=np.clip(0.93 + 0.06 * q_ps + jitter(0.015), 0.5, 1.0),
        pagesize_avg=np.maximum(300.0 + jitter(60.0), 20.0),
    )


def mr_locations_table(
    imsi: np.ndarray,
    location_cluster: np.ndarray,
    n_clusters: int,
    rng: np.random.Generator,
) -> Table:
    """Top-5 most frequent stay locations (lat/lon) from MR data.

    Cluster centroids sit on a jittered grid; a customer's five locations
    scatter around their home cluster's centroid.  Geography is only weakly
    churn-informative on its own — its real role is that co-location drives
    the co-occurrence graph.
    """
    n = len(imsi)
    grid = int(np.ceil(np.sqrt(n_clusters)))
    centroids_lat = 31.0 + (np.arange(n_clusters) // grid) * 0.02
    centroids_lon = 121.0 + (np.arange(n_clusters) % grid) * 0.02
    columns: dict[str, np.ndarray] = {"imsi": imsi}
    for rank in range(1, 6):
        spread = 0.002 * rank
        columns[f"lat_{rank}"] = (
            centroids_lat[location_cluster] + rng.normal(0, spread, size=n)
        )
        columns[f"lon_{rank}"] = (
            centroids_lon[location_cluster] + rng.normal(0, spread, size=n)
        )
    return Table.from_arrays(**columns)
