"""Synthetic telco world.

The paper's experiments run on 9 months of production BSS/OSS data from ~2.1M
prepaid customers, which we cannot have.  This package generates a synthetic
population whose *observable tables* (CDR, billing, recharge, complaint text,
CS/PS KPIs, trajectories, social graphs) and *churn outcomes* are driven by
shared latent factors, so that every feature family of Section 4.1 carries
the same relative amount of churn signal as in the paper (Table 2 ordering).

Main entry point: :class:`~repro.datagen.simulator.TelcoSimulator`, which
yields one :class:`~repro.datagen.simulator.MonthData` per simulated month
and loads raw tables into a platform catalog.
"""

from .population import CustomerPopulation
from .scenarios import DriftScenario, inject_drift
from .simulator import MonthData, SignalWeights, TelcoSimulator, TelcoWorld

__all__ = [
    "CustomerPopulation",
    "DriftScenario",
    "MonthData",
    "SignalWeights",
    "TelcoSimulator",
    "TelcoWorld",
    "inject_drift",
]
