"""BSS table emitters: user base, CDR, billing, recharge, complaints.

Every emitter takes the simulator's per-slot latent/behavior arrays for one
month and produces a :class:`~repro.dataplat.table.Table` shaped like the
corresponding production table (Figure 4 of the paper names the columns).
"""

from __future__ import annotations

import numpy as np

from ..dataplat.schema import Schema
from ..dataplat.table import Table
from .population import CustomerPopulation

#: Days per simulated month.
DAYS_PER_MONTH = 30


def user_base_table(pop: CustomerPopulation) -> Table:
    """Demographics / product / lifecycle snapshot (BSS User Base).

    Columns are **copied**: the population arrays mutate as months advance
    (tenure ticks, churned slots are reborn), and a monthly snapshot must
    not alias live state — an aliased table would leak future rebirths
    (``innet_dura`` resets) into past months.
    """
    return Table.from_arrays(
        imsi=pop.imsi,
        age=pop.age.copy(),
        gender=pop.gender.copy(),
        town_id=pop.town_id.copy(),
        sale_id=pop.sale_id.copy(),
        pspt_type=pop.pspt_type.copy(),
        is_shanghai=pop.is_shanghai.copy(),
        product_id=pop.product_id.copy(),
        product_price=pop.product_price.copy(),
        product_knd=pop.product_knd.copy(),
        credit_value=pop.credit_value.copy(),
        innet_dura=pop.innet_months.copy(),
        vip=pop.vip.copy(),
    )


def cdr_monthly_table(
    imsi: np.ndarray,
    voice_usage: np.ndarray,
    sms_usage: np.ndarray,
    data_usage: np.ndarray,
    complaint_calls: np.ndarray,
    rng: np.random.Generator,
) -> Table:
    """Monthly voice/SMS/MMS aggregates (the bulk of Figure 4's features).

    ``voice_usage`` / ``sms_usage`` / ``data_usage`` are non-negative
    per-customer activity scales; every column is a noisy share of them, so
    the whole table reflects engagement without any column being a clean
    copy of the latent.
    """
    n = len(imsi)

    def share(base: np.ndarray, fraction: float, spread: float = 0.25) -> np.ndarray:
        noise = np.exp(rng.normal(0, spread, size=n))
        return np.maximum(base * fraction * noise, 0.0)

    local_call_dur = share(voice_usage, 90.0)
    ld_call_dur = share(voice_usage, 20.0)
    roam_call_dur = share(voice_usage, 6.0)
    voice_dur = local_call_dur + ld_call_dur + roam_call_dur
    all_call_cnt = np.round(share(voice_usage, 45.0)).astype(np.int64)
    return Table.from_arrays(
        imsi=imsi,
        localbase_outer_call_dur=share(local_call_dur, 0.4, 0.1),
        localbase_inner_call_dur=share(local_call_dur, 0.6, 0.1),
        ld_call_dur=ld_call_dur,
        roam_call_dur=roam_call_dur,
        localbase_called_dur=share(voice_usage, 70.0),
        ld_called_dur=share(voice_usage, 12.0),
        roam_called_dur=share(voice_usage, 4.0),
        cm_dur=share(voice_usage, 15.0),
        ct_dur=share(voice_usage, 8.0),
        busy_call_dur=share(voice_usage, 25.0),
        fest_call_dur=share(voice_usage, 5.0),
        free_call_dur=share(voice_usage, 10.0),
        voice_dur=voice_dur,
        all_call_cnt=all_call_cnt,
        voice_cnt=np.round(share(voice_usage, 38.0)).astype(np.int64),
        local_base_call_cnt=np.round(share(voice_usage, 30.0)).astype(np.int64),
        ld_call_cnt=np.round(share(voice_usage, 6.0)).astype(np.int64),
        roam_call_cnt=np.round(share(voice_usage, 2.0)).astype(np.int64),
        caller_cnt=np.round(share(voice_usage, 20.0)).astype(np.int64),
        caller_dur=share(voice_usage, 55.0),
        sms_p2p_inner_mo_cnt=np.round(share(sms_usage, 12.0)).astype(np.int64),
        sms_p2p_other_mo_cnt=np.round(share(sms_usage, 5.0)).astype(np.int64),
        sms_p2p_cm_mo_cnt=np.round(share(sms_usage, 4.0)).astype(np.int64),
        sms_p2p_ct_mo_cnt=np.round(share(sms_usage, 2.0)).astype(np.int64),
        sms_info_mo_cnt=np.round(share(sms_usage, 1.5)).astype(np.int64),
        sms_p2p_roam_int_mo_cnt=np.round(share(sms_usage, 0.2)).astype(np.int64),
        sms_p2p_mt_cnt=np.round(share(sms_usage, 14.0)).astype(np.int64),
        sms_bill_cnt=np.round(share(sms_usage, 3.0)).astype(np.int64),
        mms_cnt=np.round(share(sms_usage, 1.0)).astype(np.int64),
        mms_p2p_inner_mo_cnt=np.round(share(sms_usage, 0.5)).astype(np.int64),
        mms_p2p_other_mo_cnt=np.round(share(sms_usage, 0.3)).astype(np.int64),
        mms_p2p_cm_mo_cnt=np.round(share(sms_usage, 0.2)).astype(np.int64),
        mms_p2p_ct_mo_cnt=np.round(share(sms_usage, 0.1)).astype(np.int64),
        mms_p2p_roam_int_mo_cnt=np.round(share(sms_usage, 0.05)).astype(np.int64),
        mms_p2p_mt_cnt=np.round(share(sms_usage, 0.6)).astype(np.int64),
        gprs_all_flux=share(data_usage, 800.0),
        call_10010_cnt=complaint_calls.astype(np.int64),
        call_10010_manual_cnt=np.minimum(
            complaint_calls, rng.poisson(0.3, size=n)
        ).astype(np.int64),
    )


def billing_table(
    imsi: np.ndarray,
    voice_usage: np.ndarray,
    data_usage: np.ndarray,
    sms_usage: np.ndarray,
    balance: np.ndarray,
    recharge_amount: np.ndarray,
    product_price: np.ndarray,
    rng: np.random.Generator,
) -> Table:
    """Monthly billing snapshot: charges, balance, gift quotas."""
    n = len(imsi)

    def noisy(values: np.ndarray, spread: float = 0.2) -> np.ndarray:
        return np.maximum(values * np.exp(rng.normal(0, spread, size=n)), 0.0)

    total_charge = noisy(product_price * 0.3 + voice_usage * 3.0 + data_usage * 2.0)
    gprs_charge = noisy(data_usage * 1.6)
    return Table.from_arrays(
        imsi=imsi,
        total_charge=total_charge,
        gprs_flux=noisy(data_usage * 750.0),
        gprs_charge=gprs_charge,
        local_call_minutes=noisy(voice_usage * 80.0),
        toll_call_minutes=noisy(voice_usage * 15.0),
        roam_call_minutes=noisy(voice_usage * 5.0),
        voice_call_minutes=noisy(voice_usage * 100.0),
        p2p_sms_mo_cnt=np.round(noisy(sms_usage * 20.0)).astype(np.int64),
        p2p_sms_mo_charge=noisy(sms_usage * 2.0),
        balance=np.maximum(balance, 0.0),
        balance_rate=np.clip(
            recharge_amount / np.maximum(balance + recharge_amount, 1.0), 0, 1
        ),
        gift_voice_call_dur=noisy(voice_usage * 12.0),
        gift_sms_mo_cnt=np.round(noisy(sms_usage * 4.0)).astype(np.int64),
        gift_flux_value=noisy(data_usage * 120.0),
        distinct_serve_count=rng.poisson(2.0, size=n).astype(np.int64),
        serve_sms_count=rng.poisson(4.0, size=n).astype(np.int64),
    )


def cdr_daily_table(
    imsi: np.ndarray,
    month: int,
    voice_usage: np.ndarray,
    sms_usage: np.ndarray,
    data_usage: np.ndarray,
    decay: np.ndarray,
    rng: np.random.Generator,
) -> Table:
    """Compact per-customer-per-day usage (supports the Velocity study).

    ``decay`` in [0, 1] is the per-customer *pre-churn ramp*: a customer
    about to churn sees their daily usage fall off across the month's final
    third — the freshness signal the Velocity experiment (Table 5) measures.
    Every customer additionally has a random within-month trend and heavy
    day-level noise, so the ramp is a shift in a noisy distribution rather
    than a clean marker.
    """
    n = len(imsi)
    days = np.arange(1, DAYS_PER_MONTH + 1)
    # Natural within-month trend (anyone can drift up or down) ...
    slope = rng.normal(0, 0.35, size=n)
    trend = 1.0 + np.outer(slope, days / DAYS_PER_MONTH - 0.5)
    # ... plus the pre-churn ramp over the final third of the month.
    progress = np.maximum(days / DAYS_PER_MONTH - 2 / 3, 0.0) * 3.0
    ramp = np.maximum(trend - np.outer(decay, progress), 0.05)
    base_day = (month - 1) * DAYS_PER_MONTH

    def daily(base: np.ndarray, scale: float) -> np.ndarray:
        burst = np.exp(rng.normal(0, 0.5, size=(n, DAYS_PER_MONTH)))
        lam = np.maximum(
            base[:, None] * scale * ramp * burst / DAYS_PER_MONTH, 0.0
        )
        return rng.poisson(lam).astype(np.float64)

    call_cnt = daily(voice_usage, 45.0)
    call_dur = call_cnt * np.exp(rng.normal(1.0, 0.3, size=(n, DAYS_PER_MONTH)))
    sms_cnt = daily(sms_usage, 25.0)
    data_mb = daily(data_usage, 800.0)
    return Table.from_arrays(
        imsi=np.repeat(imsi, DAYS_PER_MONTH),
        day=np.tile(base_day + days, n),
        call_cnt=call_cnt.ravel(),
        call_dur=call_dur.ravel(),
        sms_cnt=sms_cnt.ravel(),
        data_mb=data_mb.ravel(),
    )


def recharge_period_table(
    imsi: np.ndarray,
    month: int,
    delay_days: np.ndarray,
) -> Table:
    """One row per customer entering the recharge period this month.

    ``delay_days`` is days until the customer recharged (−1 when they never
    did within the observation horizon).  The labeling rule (Section 5)
    reads this table: delay > 15 days or −1 ⇒ churner.
    """
    return Table.from_arrays(
        imsi=imsi,
        month=np.full(len(imsi), month, dtype=np.int64),
        delay_days=delay_days.astype(np.int64),
    )


def recharge_events_table(
    imsi: np.ndarray,
    month: int,
    counts: np.ndarray,
    amounts: np.ndarray,
    rng: np.random.Generator,
) -> Table:
    """Individual recharge transactions in the month."""
    counts = counts.astype(np.int64)
    rows_imsi = np.repeat(imsi, counts)
    rows_amounts = np.repeat(amounts / np.maximum(counts, 1), counts)
    rows_amounts = rows_amounts * np.exp(
        rng.normal(0, 0.1, size=len(rows_imsi))
    )
    base_day = (month - 1) * DAYS_PER_MONTH
    rows_day = base_day + rng.integers(1, DAYS_PER_MONTH + 1, size=len(rows_imsi))
    return Table.from_arrays(
        imsi=rows_imsi,
        day=rows_day,
        amount=rows_amounts,
    )


def complaints_table(
    imsi: np.ndarray,
    month: int,
    counts: np.ndarray,
    docs: list[str],
) -> Table:
    """Complaint counts plus the concatenated complaint text per customer."""
    schema = Schema.of(imsi="int", month="int", n_complaints="int", doc="string")
    return Table(
        schema,
        {
            "imsi": imsi,
            "month": np.full(len(imsi), month, dtype=np.int64),
            "n_complaints": counts.astype(np.int64),
            "doc": np.asarray(docs, dtype=object),
        },
    )


def search_logs_table(imsi: np.ndarray, month: int, docs: list[str]) -> Table:
    """Mobile search queries per customer (from DPI probes in the paper)."""
    schema = Schema.of(imsi="int", month="int", doc="string")
    return Table(
        schema,
        {
            "imsi": imsi,
            "month": np.full(len(imsi), month, dtype=np.int64),
            "doc": np.asarray(docs, dtype=object),
        },
    )
