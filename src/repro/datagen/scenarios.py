"""Deterministic drift-injection scenarios for monitoring exercises.

Production drift reaches the paper's system through its raw tables — a
pricing change erodes ARPU month over month, a botched network rollout
degrades PS KPIs overnight.  :func:`inject_drift` reproduces both shapes on
an already-simulated :class:`~repro.datagen.simulator.TelcoWorld` by
transforming the affected monthly tables *after* simulation:

* **gradual ARPU decay** — from ``arpu_decay_start`` on, every charge /
  revenue column of the ``billing`` table shrinks by a compounding
  ``arpu_decay_rate`` per month (month ``k`` after onset is scaled by
  ``(1 − rate)^k``), the slow leak a ``consecutive``-window alert rule is
  built to catch;
* **sudden PS-KPI shift** — from ``ps_shift_month`` on, the ``ps_kpi``
  table's delay/RTT columns inflate by ``1 + ps_shift`` and its throughput
  columns deflate by the same factor: a step change that should cross the
  PSI ALERT band in its first window.

The transforms are pure functions of the input world (no new randomness),
so a drifted world is exactly as reproducible as the seeded world it came
from, and two backends see bit-identical drifted tables.  Labels, latents
and graphs are untouched: the scenario models *observation* drift — the
kind feature monitoring must catch precisely because the model's training
distribution no longer matches what it scores.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np

from ..errors import SimulationError
from .simulator import TelcoWorld

__all__ = ["DriftScenario", "inject_drift"]

#: Billing columns eroded by the ARPU decay (charges and revenue flow).
ARPU_COLUMNS = (
    "total_charge",
    "gprs_charge",
    "p2p_sms_mo_charge",
    "balance",
)

#: PS-KPI columns where *higher is worse*: inflated by the sudden shift.
PS_DELAY_COLUMNS = (
    "page_response_delay",
    "page_browsing_delay",
    "stream_start_delay",
    "email_delay",
    "tcp_rtt",
)

#: PS-KPI columns where *lower is worse*: deflated by the sudden shift.
PS_THROUGHPUT_COLUMNS = (
    "page_download_throughput",
    "stream_throughput",
    "l4_ul_throughput",
    "l4_dw_throughput",
)


@dataclass(frozen=True)
class DriftScenario:
    """Parameters of one injected drift episode.

    Either ingredient can be disabled: set ``arpu_decay_start`` (or
    ``ps_shift_month``) beyond the simulated horizon, or its magnitude
    to 0.
    """

    #: First month (1-indexed) whose billing is eroded.
    arpu_decay_start: int = 10**9
    #: Per-month multiplicative erosion in (0, 1); month ``k`` after onset
    #: is scaled by ``(1 - rate)**(k + 1)``.
    arpu_decay_rate: float = 0.12
    #: Month the PS-KPI step change lands (1-indexed).
    ps_shift_month: int = 10**9
    #: Relative size of the step; delays multiply by ``1 + shift``.
    ps_shift: float = 1.0

    def __post_init__(self) -> None:
        if not 0.0 <= self.arpu_decay_rate < 1.0:
            raise SimulationError(
                f"arpu_decay_rate must be in [0, 1), got {self.arpu_decay_rate}"
            )
        if self.ps_shift < 0.0:
            raise SimulationError(
                f"ps_shift must be >= 0, got {self.ps_shift}"
            )
        if self.arpu_decay_start < 1 or self.ps_shift_month < 1:
            raise SimulationError("drift onset months are 1-indexed (>= 1)")


def inject_drift(world: TelcoWorld, scenario: DriftScenario) -> TelcoWorld:
    """A copy of ``world`` with the scenario's table drift applied.

    The input world is not modified; months before every onset share their
    table objects with the original.
    """
    months = []
    for data in world.months:
        tables = dict(data.tables)
        t = data.month
        if (
            t >= scenario.arpu_decay_start
            and scenario.arpu_decay_rate > 0.0
            and "billing" in tables
        ):
            factor = (1.0 - scenario.arpu_decay_rate) ** (
                t - scenario.arpu_decay_start + 1
            )
            tables["billing"] = _scale_columns(
                tables["billing"], ARPU_COLUMNS, factor
            )
        if (
            t >= scenario.ps_shift_month
            and scenario.ps_shift > 0.0
            and "ps_kpi" in tables
        ):
            inflate = 1.0 + scenario.ps_shift
            shifted = _scale_columns(tables["ps_kpi"], PS_DELAY_COLUMNS, inflate)
            tables["ps_kpi"] = _scale_columns(
                shifted, PS_THROUGHPUT_COLUMNS, 1.0 / inflate
            )
        months.append(replace(data, tables=tables))
    return replace(world, months=months)


def _scale_columns(table, names: tuple[str, ...], factor: float):
    """Multiply the named columns (those present) by ``factor``."""
    for name in names:
        if name not in table.schema:
            continue
        values = np.asarray(table[name], dtype=np.float64) * factor
        table = table.with_column(name, values)
    return table
