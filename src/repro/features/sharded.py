"""Shard-parallel wide-table assembly.

:class:`ShardedWideTableBuilder` splits the per-customer feature families
(F1 BSS, F2 CS, F3 PS) across N hash shards of the customer id and builds
each shard's block in parallel over an
:class:`~repro.dataplat.executor.ExecutorBackend`.  The split reuses the
:func:`~repro.dataplat.sharding.shard_of` partitioner, so the feature
layer and the :class:`~repro.dataplat.sharding.ShardedCatalog` agree on
where a customer lives.

The decomposition is exact, not approximate: F1..F3 are per-imsi SQL
(every GROUP BY and join key is ``imsi``), so filtering each raw table to
one shard's customers and running the unchanged family query yields
exactly the rows the full-table query would produce for those customers.
Gathering concatenates the shard blocks and restores global imsi order —
the result is bit-identical to the single-process
:class:`~repro.features.widetable.WideTableBuilder`.

The world-coupled families stay central: F4..F6 walk the social graphs
(a customer's features depend on neighbours on *other* shards), F7/F8
fit/transform against the whole month's corpus, and F9 is a transform of
the (already gathered) F1 block.  They are built once by an embedded
central builder, which also keeps train/test extractor hygiene in one
place.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from ..datagen.simulator import TelcoWorld
from ..dataplat import observability
from ..dataplat.executor import ExecutorBackend, resolve_backend
from ..dataplat.observability import get_metrics, span
from ..dataplat.sharding import shard_of
from ..errors import FeatureError
from .spec import ALL_CATEGORIES, FeatureMatrix
from .widetable import WideTableBuilder

#: Families whose queries key every group-by and join on ``imsi`` — safe
#: to build shard-local with zero data movement.
SHARDED_CATEGORIES = ("F1", "F2", "F3")


class _ShardSource:
    """Month-table source restricted to one shard's customers.

    Top-level and free of engine handles so it pickles into process-pool
    workers.  Every simulator table carries an ``imsi`` column; rows whose
    customer hashes elsewhere are masked out, preserving row order within
    the shard so downstream aggregates see the same per-customer row
    sequence as the unsharded build.
    """

    def __init__(self, world: TelcoWorld, shard_id: int, num_shards: int):
        self._world = world
        self._shard_id = int(shard_id)
        self._num_shards = int(num_shards)

    def __call__(self, month: int) -> dict:
        out = {}
        for name, table in self._world.month(month).tables.items():
            if "imsi" in table.schema.names:
                codes = shard_of(table.column("imsi"), self._num_shards)
                table = table.mask(codes == self._shard_id)
            out[name] = table
        return out


def _build_shard_blocks(args):
    """Build one shard's slice of the requested families (worker body).

    Top-level for picklability.  The worker gets the world plus builder
    settings — cheaper than shipping a builder with warm caches — and
    roots its spans at ``shard.widetable`` tagged with the shard id, so a
    trace of the fan-out shows per-shard skew directly.
    """
    world, seed, scan_pruning, month, categories, shard_id, num_shards, traced = args
    worker_tracer = observability.Tracer() if traced else None
    previous = observability.set_tracer(worker_tracer) if traced else None
    try:
        builder = WideTableBuilder(
            world,
            seed=seed,
            table_source=_ShardSource(world, shard_id, num_shards),
            scan_pruning=scan_pruning,
        )
        with span("shard.widetable", shard=shard_id, month=month) as sp:
            blocks = {c: builder.category(c, month) for c in categories}
            sp.incr("rows", sum(len(b.imsi) for b in blocks.values()))
    finally:
        if traced:
            observability.set_tracer(previous)
    spans = worker_tracer.export() if worker_tracer is not None else None
    return blocks, spans


def _gather_block(parts: list[FeatureMatrix]) -> FeatureMatrix:
    """Concatenate shard blocks and restore global imsi order.

    Each family query ends ``ORDER BY imsi``, so shard blocks arrive
    internally sorted; a stable argsort over the concatenated (unique)
    imsi column reproduces exactly the row order of the unsharded build.
    """
    names = list(parts[0].names)
    for part in parts[1:]:
        if list(part.names) != names:
            raise FeatureError(
                "shard blocks disagree on feature columns; "
                "cannot gather a consistent wide table"
            )
    imsi = np.concatenate([p.imsi for p in parts])
    values = np.vstack([p.values for p in parts])
    order = np.argsort(imsi, kind="stable")
    return FeatureMatrix(imsi[order], names, values[order])


class ShardedWideTableBuilder:
    """Drop-in :class:`WideTableBuilder` that fans F1..F3 across shards.

    Parameters
    ----------
    world:
        The simulated history.
    num_shards:
        Hash-shard count for the per-customer families.
    seed, scan_pruning:
        Forwarded to the per-shard and central builders.
    backend:
        :class:`~repro.dataplat.executor.ExecutorBackend` (or name) the
        shard tasks run on; default resolves like the widetable prefetch.
    """

    def __init__(
        self,
        world: TelcoWorld,
        num_shards: int,
        seed: int = 0,
        scan_pruning: bool = True,
        backend: "ExecutorBackend | str | None" = None,
    ) -> None:
        if num_shards < 1:
            raise FeatureError(f"num_shards must be >= 1, got {num_shards}")
        self._world = world
        self._num_shards = int(num_shards)
        self._seed = seed
        self._scan_pruning = scan_pruning
        self._backend = backend
        self._central = WideTableBuilder(
            world, seed=seed, scan_pruning=scan_pruning
        )

    @property
    def world(self) -> TelcoWorld:
        return self._world

    @property
    def num_shards(self) -> int:
        return self._num_shards

    @property
    def central(self) -> WideTableBuilder:
        """The embedded single-process builder (world-coupled families)."""
        return self._central

    def fit_extractors(
        self, train_months: list[int], train_labels: dict
    ) -> "ShardedWideTableBuilder":
        """Fit LDA/FM extractors; F1 training blocks build shard-parallel."""
        for month in train_months:
            self._warm(month, ("F1",))
        self._central.fit_extractors(train_months, train_labels)
        return self

    def category(self, category: str, month: int) -> FeatureMatrix:
        """One F-block for one month — sharded for F1..F3, else central."""
        if category in SHARDED_CATEGORIES:
            self._warm(month, (category,))
        return self._central.category(category, month)

    def features(
        self, month: int, categories: "tuple[str, ...] | list[str]"
    ) -> FeatureMatrix:
        """The month's wide table; per-customer families build sharded."""
        sharded = tuple(
            c for c in dict.fromkeys(categories) if c in SHARDED_CATEGORIES
        )
        if sharded:
            self._warm(month, sharded)
        return self._central.features(month, categories)

    def surviving_categories(self, months, categories, health=None):
        """Delegates to the central builder (probe path is shared)."""
        return self._central.surviving_categories(months, categories, health)

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _warm(self, month: int, categories: Sequence[str]) -> None:
        """Scatter-build the missing sharded families into the cache.

        Finished blocks are seeded into the central builder's cache, so
        every downstream consumer (``features``, F9's transform of F1,
        the FM selector fit) sees exactly the gathered matrices.
        """
        for category in categories:
            if category not in ALL_CATEGORIES:
                raise FeatureError(
                    f"unknown category {category!r}; expected one of "
                    f"{ALL_CATEGORIES}"
                )
        missing = tuple(
            c for c in dict.fromkeys(categories)
            if c in SHARDED_CATEGORIES and (c, month) not in self._central._cache
        )
        if not missing:
            return
        resolved = resolve_backend(self._backend)
        traced = observability.enabled()
        tasks = [
            (
                self._world,
                self._seed,
                self._scan_pruning,
                month,
                missing,
                shard_id,
                self._num_shards,
                traced,
            )
            for shard_id in range(self._num_shards)
        ]
        with span(
            "shard.features",
            month=month,
            shards=self._num_shards,
            backend=resolved.name,
        ):
            tracer = observability.get_tracer()
            per_shard: list[dict] = []
            for blocks, spans in resolved.map(_build_shard_blocks, tasks):
                per_shard.append(blocks)
                if spans and tracer is not None:
                    tracer.attach(spans)
            metrics = get_metrics()
            metrics.counter("shard.widetable_tasks").inc(len(tasks))
            for category in missing:
                block = _gather_block([b[category] for b in per_shard])
                metrics.counter("shard.widetable_rows").inc(len(block.imsi))
                self._central._cache[(category, month)] = block
