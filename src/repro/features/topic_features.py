"""F7/F8: LDA topic features over complaint / search text (Section 4.1.3).

The extractor builds a vocabulary and fits K=10 LDA on the training months'
documents, then folds any month's documents into the fitted topics.  Unknown
words at transform time are dropped, matching the paper's fixed-vocabulary
setup (2 408 complaint / 15 974 search words after frequency pruning).
"""

from __future__ import annotations

import numpy as np

from ..datagen.simulator import TelcoWorld
from ..errors import FeatureError, NotFittedError
from ..ml.lda import LatentDirichletAllocation
from .spec import FeatureMatrix

#: Category → source table mapping.
SOURCE_OF_CATEGORY = {
    "F7": "complaints",
    "F8": "search_logs",
}


class TopicFeatureExtractor:
    """Fits LDA on training months and emits θ features per month."""

    def __init__(
        self,
        category: str,
        n_topics: int = 10,
        n_iter: int = 25,
        min_word_count: int = 3,
        seed: int = 0,
    ) -> None:
        source = SOURCE_OF_CATEGORY.get(category)
        if source is None:
            raise FeatureError(
                f"unknown topic category {category!r}; "
                f"expected one of {sorted(SOURCE_OF_CATEGORY)}"
            )
        self.category = category
        self.source = source
        self.n_topics = n_topics
        self.n_iter = n_iter
        self.min_word_count = min_word_count
        self.seed = seed
        self._vocab: dict[str, int] | None = None
        self._lda: LatentDirichletAllocation | None = None

    def fit(self, world: TelcoWorld, months: list[int]) -> "TopicFeatureExtractor":
        """Build the vocabulary and topic-word structure from these months."""
        docs: list[str] = []
        for month in months:
            table = world.month(month).tables[self.source]
            docs.extend(str(d) for d in table["doc"])
        counts: dict[str, int] = {}
        for doc in docs:
            for token in doc.split():
                counts[token] = counts.get(token, 0) + 1
        vocab = {
            token: idx
            for idx, token in enumerate(
                sorted(t for t, c in counts.items() if c >= self.min_word_count)
            )
        }
        if not vocab:
            raise FeatureError(
                f"no vocabulary survives pruning for {self.category} "
                f"(min_word_count={self.min_word_count})"
            )
        tokenized = [self._encode(doc, vocab) for doc in docs]
        # LDA cannot fit on an all-empty corpus; guaranteed non-empty here
        # because the vocabulary came from these very documents.
        lda = LatentDirichletAllocation(
            n_topics=self.n_topics, n_iter=self.n_iter, seed=self.seed
        )
        lda.fit_transform(tokenized, vocab_size=len(vocab))
        self._vocab = vocab
        self._lda = lda
        return self

    def transform(self, world: TelcoWorld, month: int) -> FeatureMatrix:
        """θ features for every customer of one month."""
        if self._vocab is None or self._lda is None:
            raise NotFittedError(
                f"TopicFeatureExtractor({self.category}) used before fit"
            )
        table = world.month(month).tables[self.source]
        docs = [self._encode(str(d), self._vocab) for d in table["doc"]]
        theta = self._lda.transform(docs)
        names = [
            f"{self.source}_topic_{k}" for k in range(self.n_topics)
        ]
        return FeatureMatrix(table["imsi"], names, theta)

    @staticmethod
    def _encode(doc: str, vocab: dict[str, int]) -> list[int]:
        return [vocab[t] for t in doc.split() if t in vocab]
