"""F3: 15 PS data-service KPI/KQI features + 10 top-location features."""

from __future__ import annotations

import numpy as np

from ..dataplat.sql import SQLEngine
from .spec import FeatureMatrix

PS_COLUMNS = (
    "page_response_success_rate",
    "page_response_delay",
    "page_browsing_success_rate",
    "page_browsing_delay",
    "page_download_throughput",
    "stream_success_rate",
    "stream_start_delay",
    "stream_throughput",
    "email_success_rate",
    "email_delay",
    "l4_ul_throughput",
    "l4_dw_throughput",
    "tcp_rtt",
    "tcp_conn_success_rate",
    "pagesize_avg",
)

LOCATION_COLUMNS = tuple(
    f"{axis}_{rank}" for rank in range(1, 6) for axis in ("lat", "lon")
)


def build_f3(engine: SQLEngine, month: int) -> FeatureMatrix:
    """Join PS KPIs with MR top-5 locations for one month, IMSI-sorted."""
    ps_cols = ", ".join(f"k.{c}" for c in PS_COLUMNS)
    loc_cols = ", ".join(f"l.{c}" for c in LOCATION_COLUMNS)
    table = engine.query(
        f"""
        SELECT k.imsi AS imsi, {ps_cols}, {loc_cols}
        FROM ps_kpi_m{month} k
        JOIN mr_locations_m{month} l ON k.imsi = l.imsi
        ORDER BY k.imsi
        """
    )
    names = list(PS_COLUMNS) + list(LOCATION_COLUMNS)
    values = np.column_stack([
        np.asarray(table[c], dtype=np.float64) for c in names
    ])
    return FeatureMatrix(table["imsi"], names, values)
