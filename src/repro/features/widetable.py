"""Unified wide-table assembly.

:class:`WideTableBuilder` owns one world's feature engineering: it registers
each month's raw tables as temp views of a private SQL engine, builds every
F1..F9 block on demand (caching per month), and left-join-aligns all blocks
onto the month's customer list — the paper's "unified wide table, each tuple
one customer's feature vector".

Supervised/corpus-fitted extractors (LDA topics, FM pair selection) must be
fitted with :meth:`fit_extractors` on training months before the categories
F7/F8/F9 can be built, mirroring the train/test hygiene of the sliding
window.
"""

from __future__ import annotations

from collections.abc import Callable, Sequence

import numpy as np

from ..datagen.simulator import TelcoWorld
from ..dataplat import observability
from ..dataplat.executor import ExecutorBackend, resolve_backend
from ..dataplat.observability import span
from ..dataplat.resilience import PipelineHealthReport
from ..dataplat.sql import SQLEngine
from ..errors import DataPlatformError, FeatureError
from .bss_features import build_f1
from .cs_features import build_f2
from .graph_features import GraphFeatureBuilder
from .ps_features import build_f3
from .second_order import SecondOrderSelector
from .spec import ALL_CATEGORIES, FeatureMatrix
from .topic_features import TopicFeatureExtractor


class WideTableBuilder:
    """Feature engineering facade over one :class:`TelcoWorld`.

    Parameters
    ----------
    world:
        The simulated history.
    seed:
        Seed for the fitted extractors.
    table_source:
        Optional override for where a month's raw tables come from — a
        callable ``month -> {name: Table}``.  The default reads the world's
        in-memory tables; a catalog-backed source (see
        :class:`~repro.dataplat.resilience.CatalogTableSource`) routes the
        reads through the block store instead, so storage faults and down
        feeds reach the feature layer, where :meth:`surviving_categories`
        degrades around them.
    scan_pruning:
        Forwarded to the private SQL engine: the per-month feature queries
        then fetch only the column chunks they reference and skip
        partitions zone maps prove empty.  Off is for A/B-ing the pruned
        path; results are identical either way.
    """

    def __init__(
        self,
        world: TelcoWorld,
        seed: int = 0,
        table_source: Callable[[int], dict] | None = None,
        scan_pruning: bool = True,
    ) -> None:
        self._world = world
        self._seed = seed
        self._table_source = table_source
        self._engine = SQLEngine(scan_pruning=scan_pruning)
        self._registered: set[int] = set()
        self._cache: dict[tuple[str, int], FeatureMatrix] = {}
        self._graphs = GraphFeatureBuilder(world)
        self._topics: dict[str, TopicFeatureExtractor] = {}
        self._second_order: SecondOrderSelector | None = None
        self._fit_months: tuple[int, ...] = ()

    @property
    def world(self) -> TelcoWorld:
        return self._world

    @property
    def engine(self) -> SQLEngine:
        """The SQL engine holding the per-month views (for inspection)."""
        return self._engine

    # ------------------------------------------------------------------
    # Fitting the supervised / corpus extractors
    # ------------------------------------------------------------------

    def fit_extractors(
        self,
        train_months: list[int],
        train_labels: dict[int, np.ndarray],
    ) -> "WideTableBuilder":
        """Fit LDA vocabularies/topics and the FM pair selector.

        ``train_labels[month]`` must label *every slot* of that month
        (the builder applies eligibility filtering later, at assembly).
        """
        if not train_months:
            raise FeatureError("fit_extractors requires at least one month")
        self._fit_months = tuple(train_months)
        for category in ("F7", "F8"):
            extractor = TopicFeatureExtractor(category, seed=self._seed)
            extractor.fit(self._world, train_months)
            self._topics[category] = extractor
        # FM selector: stack the baseline blocks of all training months.
        blocks = [self.category("F1", m) for m in train_months]
        base = FeatureMatrix(
            np.concatenate([b.imsi for b in blocks]),
            list(blocks[0].names),
            np.vstack([b.values for b in blocks]),
        )
        labels = np.concatenate(
            [np.asarray(train_labels[m], dtype=np.int64) for m in train_months]
        )
        selector = SecondOrderSelector(seed=self._seed)
        selector.fit(base, labels)
        self._second_order = selector
        # Topic/pair fits changed: invalidate cached supervised blocks.
        self._cache = {
            k: v for k, v in self._cache.items() if k[0] not in ("F7", "F8", "F9")
        }
        return self

    # ------------------------------------------------------------------
    # Category blocks
    # ------------------------------------------------------------------

    def category(self, category: str, month: int) -> FeatureMatrix:
        """One F-block for one month (cached)."""
        if category not in ALL_CATEGORIES:
            raise FeatureError(
                f"unknown category {category!r}; expected one of {ALL_CATEGORIES}"
            )
        key = (category, month)
        cached = self._cache.get(key)
        if cached is not None:
            return cached
        with span(f"feature.{category}", month=month) as sp:
            self._register_month(month)
            if category == "F1":
                block = build_f1(self._engine, month)
            elif category == "F2":
                block = build_f2(self._engine, month)
            elif category == "F3":
                block = build_f3(self._engine, month)
            elif category in ("F4", "F5", "F6"):
                block = self._graphs.build(category, month)
            elif category in ("F7", "F8"):
                extractor = self._topics.get(category)
                if extractor is None:
                    raise FeatureError(
                        f"{category} requires fit_extractors() on training months"
                    )
                block = extractor.transform(self._world, month)
            else:  # F9
                if self._second_order is None:
                    raise FeatureError(
                        "F9 requires fit_extractors() on training months"
                    )
                block = self._second_order.transform(self.category("F1", month))
            sp.incr("rows", len(block.imsi))
            sp.incr("columns", len(block.names))
        self._cache[key] = block
        return block

    def features(
        self, month: int, categories: tuple[str, ...] | list[str]
    ) -> FeatureMatrix:
        """The wide table of one month over the given categories.

        Rows cover every slot of the month in IMSI order; blocks keyed by a
        subset of customers (none currently) are left-join aligned with
        zero fill.
        """
        if not categories:
            raise FeatureError("need at least one feature category")
        imsi = np.sort(self._world.month(month).imsi)
        blocks = []
        for category in categories:
            block = self.category(category, month)
            if not np.array_equal(block.imsi, imsi):
                block = block.align_to(imsi)
            blocks.append(block)
        return FeatureMatrix.concat(blocks)

    def prefetch(
        self,
        months: Sequence[int],
        categories: Sequence[str],
        backend: "ExecutorBackend | str | None" = None,
    ) -> "WideTableBuilder":
        """Warm the block cache for a month window, one task per month.

        Per-month family builds are independent once the month's raw tables
        are registered, so they fan out across an
        :class:`~repro.dataplat.executor.ExecutorBackend`: each task builds
        every still-missing block of one month and ships the finished
        :class:`FeatureMatrix` objects back to this builder's cache.  Blocks
        are identical to what :meth:`category` would build in-process — the
        build path is shared — so prefetching is purely a wall-clock
        optimization.

        Supervised families (F7/F8/F9) are skipped when the extractors are
        not fitted yet rather than raising: prefetch is best-effort warming,
        and the strict error still comes from :meth:`category`.  Unknown
        category names do raise, matching :meth:`category`.
        """
        for category in categories:
            if category not in ALL_CATEGORIES:
                raise FeatureError(
                    f"unknown category {category!r}; expected one of "
                    f"{ALL_CATEGORIES}"
                )
        buildable = tuple(
            c
            for c in dict.fromkeys(categories)
            if (c not in ("F7", "F8") or c in self._topics)
            and (c != "F9" or self._second_order is not None)
        )
        pending = [
            (m, missing)
            for m in dict.fromkeys(months)
            if (
                missing := tuple(
                    c for c in buildable if (c, m) not in self._cache
                )
            )
        ]
        if not pending:
            return self
        # Register months in the parent first: workers receive a complete
        # engine, and the serial path needs the views anyway.
        for month, _ in pending:
            self._register_month(month)
        resolved = resolve_backend(backend)
        traced = observability.enabled()
        tasks = [(self, month, missing, traced) for month, missing in pending]
        with span(
            "widetable.prefetch", months=len(pending), backend=resolved.name
        ):
            tracer = observability.get_tracer()
            for blocks, spans in resolved.map(_build_month_blocks, tasks):
                self._cache.update(blocks)
                if spans and tracer is not None:
                    tracer.attach(spans)
        return self

    # ------------------------------------------------------------------
    # Graceful degradation
    # ------------------------------------------------------------------

    def surviving_categories(
        self,
        months: Sequence[int],
        categories: Sequence[str],
        health: PipelineHealthReport | None = None,
    ) -> tuple[str, ...]:
        """The subset of ``categories`` buildable for *every* given month.

        A family whose block cannot be built for any month in the window
        (source table missing, feed down, storage failure) is dropped and
        recorded on ``health``, so train and test keep identical feature
        columns.  F1 — the BSS baseline the paper's system always has — is
        not droppable: its failure propagates, because a churn list without
        any features is not a degraded output, it is no output.

        Probed blocks land in the regular cache, so a follow-up
        :meth:`features` call does no extra work.
        """
        survivors: list[str] = []
        for category in categories:
            reason = None
            for month in months:
                try:
                    self.category(category, month)
                except (FeatureError, DataPlatformError) as exc:
                    reason = f"month {month}: {exc}"
                    break
            if reason is None:
                survivors.append(category)
            elif category == "F1":
                raise FeatureError(
                    f"baseline family F1 unavailable ({reason}); "
                    f"cannot degrade below the BSS baseline"
                )
            elif health is not None:
                health.drop_family(category, reason)
        if health is not None:
            health.families_used = list(survivors)
        return tuple(survivors)

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _register_month(self, month: int) -> None:
        if month in self._registered:
            return
        if self._table_source is not None:
            tables = self._table_source(month)
        else:
            tables = self._world.month(month).tables
        for name, table in tables.items():
            self._engine.register(table, f"{name}_m{month}")
        self._registered.add(month)


def _build_month_blocks(args):
    """Build one month's missing blocks on a (possibly remote) builder copy.

    Top-level for picklability.  The worker's builder is a deep copy, so
    mutating its caches is invisible; only the requested blocks travel back,
    keyed for a plain ``dict.update`` into the parent's cache — plus the
    worker tracer's exported spans when the submitter had tracing on, so
    per-family spans survive the process boundary.
    """
    builder, month, categories, traced = args
    worker_tracer = observability.Tracer() if traced else None
    previous = observability.set_tracer(worker_tracer) if traced else None
    try:
        blocks = {(c, month): builder.category(c, month) for c in categories}
    finally:
        if traced:
            observability.set_tracer(previous)
    spans = worker_tracer.export() if worker_tracer is not None else None
    return blocks, spans
