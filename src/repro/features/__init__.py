"""Feature engineering (Section 4.1).

Nine feature families, named F1..F9 as in Table 2 of the paper:

====  ==========================================  =====================
id    family                                      built by
====  ==========================================  =====================
F1    baseline BSS features (~70)                 :mod:`.bss_features`
F2    CS voice KPI/KQI (9)                        :mod:`.cs_features`
F3    PS data KPI/KQI + locations (25)            :mod:`.ps_features`
F4    call-graph PageRank + label prop (2)        :mod:`.graph_features`
F5    message-graph PageRank + label prop (2)     :mod:`.graph_features`
F6    co-occurrence PageRank + label prop (2)     :mod:`.graph_features`
F7    complaint-text LDA topics (10)              :mod:`.topic_features`
F8    search-query LDA topics (10)                :mod:`.topic_features`
F9    FM-selected second-order products (20)      :mod:`.second_order`
====  ==========================================  =====================

:class:`~repro.features.widetable.WideTableBuilder` assembles any subset
into the unified wide table the classifiers consume.
"""

from .sharded import SHARDED_CATEGORIES, ShardedWideTableBuilder
from .spec import ALL_CATEGORIES, CATEGORY_INFO, FeatureMatrix
from .widetable import WideTableBuilder

__all__ = [
    "ALL_CATEGORIES",
    "CATEGORY_INFO",
    "FeatureMatrix",
    "SHARDED_CATEGORIES",
    "ShardedWideTableBuilder",
    "WideTableBuilder",
]
