"""F1: baseline BSS features, built with SQL like the paper's pipeline.

The paper sanitizes raw Hive tables with Spark SQL, materializes
intermediate aggregates, and joins everything into one wide table.  We do
the same against the mini platform: two CTAS aggregations (recharge events →
per-customer totals, daily CDR → monthly totals plus a late-month share that
captures recent behaviour) followed by a six-way join.
"""

from __future__ import annotations

import numpy as np

from ..dataplat.sql import SQLEngine
from ..errors import FeatureError
from .spec import FeatureMatrix

#: Columns pulled straight from the monthly tables (qualified per source).
USER_BASE_COLUMNS = (
    "age", "gender", "town_id", "sale_id", "pspt_type", "is_shanghai",
    "product_id", "product_price", "product_knd", "credit_value",
    "innet_dura", "vip",
)

CDR_MONTHLY_COLUMNS = (
    "localbase_outer_call_dur", "localbase_inner_call_dur", "ld_call_dur",
    "roam_call_dur", "localbase_called_dur", "ld_called_dur",
    "roam_called_dur", "cm_dur", "ct_dur", "busy_call_dur", "fest_call_dur",
    "free_call_dur", "voice_dur", "all_call_cnt", "voice_cnt",
    "local_base_call_cnt", "ld_call_cnt", "roam_call_cnt", "caller_cnt",
    "caller_dur", "sms_p2p_inner_mo_cnt", "sms_p2p_other_mo_cnt",
    "sms_p2p_cm_mo_cnt", "sms_p2p_ct_mo_cnt", "sms_info_mo_cnt",
    "sms_p2p_roam_int_mo_cnt", "sms_p2p_mt_cnt", "sms_bill_cnt", "mms_cnt",
    "mms_p2p_inner_mo_cnt", "mms_p2p_other_mo_cnt", "mms_p2p_cm_mo_cnt",
    "mms_p2p_ct_mo_cnt", "mms_p2p_roam_int_mo_cnt", "mms_p2p_mt_cnt",
    "gprs_all_flux", "call_10010_cnt", "call_10010_manual_cnt",
)

BILLING_COLUMNS = (
    "total_charge", "gprs_flux", "gprs_charge", "local_call_minutes",
    "toll_call_minutes", "roam_call_minutes", "voice_call_minutes",
    "p2p_sms_mo_cnt", "p2p_sms_mo_charge", "balance", "balance_rate",
    "gift_voice_call_dur", "gift_sms_mo_cnt", "gift_flux_value",
    "distinct_serve_count", "serve_sms_count",
)

#: Day of month after which usage counts as "late" for the trend features.
LATE_DAY_CUT = 20


def build_f1(engine: SQLEngine, month: int) -> FeatureMatrix:
    """Build the F1 block for one month from registered ``*_m<month>`` views."""
    m = month
    base_day = (m - 1) * 30

    engine.register(
        engine.query(
            f"""
            SELECT imsi,
                   COUNT(*) AS recharge_cnt,
                   SUM(amount) AS recharge_amt
            FROM recharge_events_m{m}
            GROUP BY imsi
            """
        ),
        f"recharge_agg_m{m}",
    )
    engine.register(
        engine.query(
            f"""
            SELECT imsi,
                   SUM(call_dur) AS total_call_dur_d,
                   SUM(CASE WHEN day > {base_day + LATE_DAY_CUT}
                       THEN call_dur ELSE 0 END) AS late_call_dur_d,
                   SUM(data_mb) AS total_data_mb_d,
                   SUM(CASE WHEN day > {base_day + LATE_DAY_CUT}
                       THEN data_mb ELSE 0 END) AS late_data_mb_d
            FROM cdr_daily_m{m}
            GROUP BY imsi
            """
        ),
        f"daily_agg_m{m}",
    )

    select_parts = ["u.imsi AS imsi"]
    select_parts += [f"u.{c}" for c in USER_BASE_COLUMNS]
    select_parts += [f"c.{c}" for c in CDR_MONTHLY_COLUMNS]
    select_parts += [f"b.{c}" for c in BILLING_COLUMNS]
    select_parts += [
        "r.recharge_cnt",
        "r.recharge_amt",
        "d.total_call_dur_d",
        "SAFE_DIV(d.late_call_dur_d, d.total_call_dur_d) AS late_call_share",
        "d.total_data_mb_d",
        "SAFE_DIV(d.late_data_mb_d, d.total_data_mb_d) AS late_data_share",
        "p.n_complaints",
    ]
    sql = f"""
        SELECT {', '.join(select_parts)}
        FROM user_base_m{m} u
        JOIN cdr_monthly_m{m} c ON u.imsi = c.imsi
        JOIN billing_m{m} b ON u.imsi = b.imsi
        JOIN complaints_m{m} p ON u.imsi = p.imsi
        JOIN daily_agg_m{m} d ON u.imsi = d.imsi
        LEFT JOIN recharge_agg_m{m} r ON u.imsi = r.imsi
        ORDER BY u.imsi
    """
    wide = engine.query(sql)
    names = [n for n in wide.schema.names if n != "imsi"]
    if len(names) < 60:
        raise FeatureError(
            f"F1 wide table unexpectedly narrow: {len(names)} columns"
        )
    values = np.column_stack([
        np.asarray(wide[n], dtype=np.float64) for n in names
    ])
    return FeatureMatrix(wide["imsi"], names, values)
