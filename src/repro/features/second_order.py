"""F9: FM-selected second-order features (Section 4.1.4).

Out of the (N+1)N/2 possible products of baseline features, a factorization
machine is trained on the churn labels; the 20 pairs with the strongest
learned interaction weights ``<v_i, v_j>`` become explicit product features.
Products are computed on standardized columns so no single wide-scaled
feature dominates.
"""

from __future__ import annotations

import numpy as np

from ..config import PAPER
from ..errors import FeatureError, NotFittedError
from ..ml.fm import FactorizationMachine
from ..ml.preprocess import Standardizer
from .spec import FeatureMatrix


class SecondOrderSelector:
    """Selects and materializes the top-k interaction features."""

    def __init__(
        self,
        n_pairs: int = PAPER.second_order_features,
        n_factors: int = 8,
        n_epochs: int = 10,
        seed: int = 0,
    ) -> None:
        if n_pairs < 1:
            raise FeatureError(f"n_pairs must be >= 1, got {n_pairs}")
        self.n_pairs = n_pairs
        self.n_factors = n_factors
        self.n_epochs = n_epochs
        self.seed = seed
        self._standardizer: Standardizer | None = None
        self._pairs: list[tuple[int, int]] | None = None
        self._base_names: list[str] | None = None

    def fit(self, base: FeatureMatrix, labels: np.ndarray) -> "SecondOrderSelector":
        """Train the FM on the baseline block and pick the top pairs."""
        labels = np.asarray(labels)
        if len(labels) != base.n_rows:
            raise FeatureError(
                f"{len(labels)} labels for {base.n_rows} feature rows"
            )
        standardizer = Standardizer().fit(base.values)
        z = standardizer.transform(base.values)
        fm = FactorizationMachine(
            n_factors=self.n_factors, n_epochs=self.n_epochs, seed=self.seed
        )
        fm.fit(z, labels)
        top = fm.top_pairs(self.n_pairs)
        self._standardizer = standardizer
        self._pairs = [(i, j) for i, j, _ in top]
        self._base_names = list(base.names)
        return self

    @property
    def selected_pairs(self) -> list[tuple[str, str]]:
        """The chosen pairs as feature-name tuples."""
        if self._pairs is None or self._base_names is None:
            raise NotFittedError("SecondOrderSelector used before fit")
        return [
            (self._base_names[i], self._base_names[j]) for i, j in self._pairs
        ]

    def transform(self, base: FeatureMatrix) -> FeatureMatrix:
        """Product features for any month's baseline block."""
        if (
            self._pairs is None
            or self._standardizer is None
            or self._base_names is None
        ):
            raise NotFittedError("SecondOrderSelector used before fit")
        if list(base.names) != self._base_names:
            raise FeatureError(
                "baseline feature names differ from the fitted ones"
            )
        z = self._standardizer.transform(base.values)
        columns = [z[:, i] * z[:, j] for i, j in self._pairs]
        names = [
            f"x2_{self._base_names[i]}__{self._base_names[j]}"
            for i, j in self._pairs
        ]
        return FeatureMatrix(base.imsi, names, np.column_stack(columns))
