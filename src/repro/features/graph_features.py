"""F4/F5/F6: graph-based features (Section 4.1.2).

Two features per graph and customer:

* ``pagerank_<graph>`` — static importance under weighted PageRank (Eq. 1);
  computed once per world since the graphs are stable;
* ``labelprop_<graph>`` — the churner probability propagated from customers
  *known to be churning this month* (they are in the recharge period past
  the 15-day grace, so their labels are observable when features are built).
"""

from __future__ import annotations

import numpy as np

from ..datagen.simulator import TelcoWorld
from ..errors import FeatureError
from ..ml.graphalgo import label_propagation, pagerank
from .spec import FeatureMatrix

#: Category → graph name mapping (paper Table 2).
GRAPH_OF_CATEGORY = {
    "F4": "call",
    "F5": "message",
    "F6": "cooccurrence",
}


class GraphFeatureBuilder:
    """Computes per-month graph features for one world."""

    def __init__(self, world: TelcoWorld) -> None:
        self._world = world
        self._pagerank: dict[str, np.ndarray] = {}

    def _pagerank_of(self, graph_name: str) -> np.ndarray:
        cached = self._pagerank.get(graph_name)
        if cached is None:
            graph = self._world.graphs[graph_name]
            cached = pagerank(graph.edges, graph.weights, graph.n_nodes)
            self._pagerank[graph_name] = cached
        return cached

    def build(self, category: str, month: int) -> FeatureMatrix:
        """Both features of one graph category for one month."""
        graph_name = GRAPH_OF_CATEGORY.get(category)
        if graph_name is None:
            raise FeatureError(
                f"unknown graph category {category!r}; "
                f"expected one of {sorted(GRAPH_OF_CATEGORY)}"
            )
        data = self._world.month(month)
        graph = self._world.graphs[graph_name]
        pr = self._pagerank_of(graph_name)
        seeds = {
            int(slot): 1 for slot in np.flatnonzero(data.churning_now)
        }
        if seeds:
            beliefs = label_propagation(
                graph.edges, graph.weights, graph.n_nodes, seeds, max_iter=20
            )
            lp = beliefs[:, 1]
        else:
            lp = np.zeros(graph.n_nodes)
        values = np.column_stack([pr, lp])
        names = [f"pagerank_{graph_name}", f"labelprop_{graph_name}"]
        return FeatureMatrix(data.imsi, names, values)
