"""F2: the 9 CS voice KPI/KQI features (Section 4.1.1)."""

from __future__ import annotations

import numpy as np

from ..dataplat.sql import SQLEngine
from .spec import FeatureMatrix

CS_COLUMNS = (
    "perceived_call_success_rate",
    "e2e_conn_delay",
    "perceived_call_drop_rate",
    "voice_quality_mos_ul",
    "voice_quality_mos_dl",
    "voice_quality_ip_mos",
    "oneway_audio_cnt",
    "noise_cnt",
    "echo_cnt",
)


def build_f2(engine: SQLEngine, month: int) -> FeatureMatrix:
    """Select the CS KPI block for one month, IMSI-sorted."""
    cols = ", ".join(CS_COLUMNS)
    table = engine.query(
        f"SELECT imsi, {cols} FROM cs_kpi_m{month} ORDER BY imsi"
    )
    values = np.column_stack([
        np.asarray(table[c], dtype=np.float64) for c in CS_COLUMNS
    ])
    return FeatureMatrix(table["imsi"], list(CS_COLUMNS), values)
