"""Feature matrix abstraction and the F1..F9 category registry."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import FeatureError

#: Category ids in paper order.
ALL_CATEGORIES = ("F1", "F2", "F3", "F4", "F5", "F6", "F7", "F8", "F9")

#: What each category is (paper Table 2 / Section 4.1).
CATEGORY_INFO = {
    "F1": "baseline BSS features",
    "F2": "CS voice KPI/KQI features",
    "F3": "PS data KPI/KQI + location features",
    "F4": "call graph PageRank + label propagation",
    "F5": "message graph PageRank + label propagation",
    "F6": "co-occurrence graph PageRank + label propagation",
    "F7": "complaint text topic features",
    "F8": "search query topic features",
    "F9": "FM-selected second-order features",
}


@dataclass
class FeatureMatrix:
    """A named, IMSI-aligned block of features.

    ``values`` is (n_customers, n_features) float64; ``names`` labels the
    columns; ``imsi`` identifies the rows.
    """

    imsi: np.ndarray
    names: list[str]
    values: np.ndarray

    def __post_init__(self) -> None:
        self.imsi = np.asarray(self.imsi, dtype=np.int64)
        self.values = np.asarray(self.values, dtype=np.float64)
        if self.values.ndim != 2:
            raise FeatureError(f"values must be 2-D, got {self.values.ndim}-D")
        if len(self.imsi) != len(self.values):
            raise FeatureError(
                f"{len(self.imsi)} imsi rows vs {len(self.values)} value rows"
            )
        if len(self.names) != self.values.shape[1]:
            raise FeatureError(
                f"{len(self.names)} names vs {self.values.shape[1]} columns"
            )
        if len(set(self.names)) != len(self.names):
            dupes = {n for n in self.names if self.names.count(n) > 1}
            raise FeatureError(f"duplicate feature names: {sorted(dupes)}")

    @property
    def n_rows(self) -> int:
        return len(self.imsi)

    @property
    def n_features(self) -> int:
        return self.values.shape[1]

    def column(self, name: str) -> np.ndarray:
        try:
            j = self.names.index(name)
        except ValueError:
            raise FeatureError(
                f"unknown feature {name!r}; have {len(self.names)} features"
            ) from None
        return self.values[:, j]

    def select(self, names: list[str]) -> "FeatureMatrix":
        """Project onto a subset of feature columns."""
        cols = [self.names.index(n) for n in names]
        return FeatureMatrix(self.imsi, list(names), self.values[:, cols])

    def align_to(self, imsi: np.ndarray) -> "FeatureMatrix":
        """Reorder/sub-select rows to a target IMSI order.

        Missing IMSIs get all-zero rows (a customer with no complaints has
        no complaint doc, etc.); this mirrors the LEFT JOIN + fill the
        paper's wide-table build performs in Spark SQL.
        """
        imsi = np.asarray(imsi, dtype=np.int64)
        position = {int(v): i for i, v in enumerate(self.imsi)}
        values = np.zeros((len(imsi), self.n_features))
        for row, key in enumerate(imsi.tolist()):
            src = position.get(key)
            if src is not None:
                values[row] = self.values[src]
        return FeatureMatrix(imsi, list(self.names), values)

    def hstack(self, other: "FeatureMatrix") -> "FeatureMatrix":
        """Column-concatenate two blocks over the same rows."""
        if not np.array_equal(self.imsi, other.imsi):
            raise FeatureError("hstack requires identical imsi order")
        overlap = set(self.names) & set(other.names)
        if overlap:
            raise FeatureError(f"duplicate features in hstack: {sorted(overlap)}")
        return FeatureMatrix(
            self.imsi,
            list(self.names) + list(other.names),
            np.hstack([self.values, other.values]),
        )

    @staticmethod
    def concat(blocks: list["FeatureMatrix"]) -> "FeatureMatrix":
        """hstack a list of aligned blocks."""
        if not blocks:
            raise FeatureError("concat requires at least one block")
        out = blocks[0]
        for block in blocks[1:]:
            out = out.hstack(block)
        return out
