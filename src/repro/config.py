"""Global configuration for the reproduction.

The paper operates on roughly 2.1 million prepaid customers per month and
reports top-``U`` cutoffs of 50k..400k.  We run on a scaled-down synthetic
population; :class:`ScaleConfig` keeps the mapping between the paper's
absolute cutoffs and population *fractions* so every experiment can report
cutoffs at the same fraction of its own population.

Paper constants (churn labeling rule, sliding-window length, classifier
hyper-parameters from Section 4.2) live in :class:`PaperConstants` so that the
rest of the code never hard-codes them.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field

from .errors import ConfigError

#: Population size of the operator in the paper (Table 1, ~2.1M per month).
PAPER_POPULATION = 2_100_000

#: Top-U cutoffs reported in Table 3 of the paper.
PAPER_TOP_U = (50_000, 100_000, 150_000, 200_000, 250_000, 300_000, 350_000, 400_000)


@dataclass(frozen=True)
class PaperConstants:
    """Constants fixed by the paper's Section 4 and 5."""

    #: A prepaid customer who does not recharge within this many days of the
    #: recharge period is labeled a churner (Section 5, labeling rule).
    churn_grace_days: int = 15

    #: Length of the sliding window in months (Figure 6).
    window_months: int = 4

    #: PageRank damping factor (Section 4.1.2).
    pagerank_damping: float = 0.85

    #: Number of LDA topics per corpus (Section 4.1.3).
    lda_topics: int = 10

    #: Number of second-order features selected by LIBFM (Section 4.1.4).
    second_order_features: int = 20

    #: Random-forest size in the deployed system (Section 4.2).
    rf_trees: int = 500

    #: Minimum samples per RF leaf (Section 4.2).
    rf_min_leaf: int = 100

    #: Learning rate shared by GBDT / LIBFM / LIBLINEAR (Section 5.8).
    learning_rate: float = 0.1

    #: Average prepaid churn rate reported in Figure 1 / Table 1.
    prepaid_churn_rate: float = 0.092

    #: Average postpaid churn rate reported in Figure 1.
    postpaid_churn_rate: float = 0.052


#: Module-level singleton with the paper's constants.
PAPER = PaperConstants()


@dataclass(frozen=True)
class ScaleConfig:
    """Maps the paper's absolute population numbers onto a smaller run.

    Parameters
    ----------
    population:
        Number of synthetic prepaid customers per month.
    months:
        Number of simulated months (the paper uses 9).
    seed:
        Master random seed for the simulation.
    """

    population: int = 2_000
    months: int = 9
    seed: int = 7

    def __post_init__(self) -> None:
        if self.population < 100:
            raise ConfigError(f"population must be >= 100, got {self.population}")
        if self.months < 1:
            raise ConfigError(f"months must be >= 1, got {self.months}")

    @property
    def scale_factor(self) -> float:
        """Ratio of our population to the paper's (~2.1M)."""
        return self.population / PAPER_POPULATION

    def scaled_u(self, paper_u: int) -> int:
        """Translate a paper top-``U`` cutoff to this population.

        ``scaled_u(50_000)`` returns the cutoff covering the same population
        fraction (≈2.4%) of our synthetic customer base, with a floor of 1.
        """
        if paper_u <= 0:
            raise ConfigError(f"paper_u must be positive, got {paper_u}")
        return max(1, round(paper_u * self.scale_factor))

    def scaled_top_u(self) -> tuple[int, ...]:
        """All Table 3 cutoffs translated to this population."""
        return tuple(self.scaled_u(u) for u in PAPER_TOP_U)


@dataclass(frozen=True)
class ModelConfig:
    """Hyper-parameters for the classifiers, scaled for a single-core run.

    The paper trains 500 trees on ~2M instances; at our scale far fewer trees
    saturate.  All experiments accept a ``ModelConfig`` so the full paper
    settings remain one constructor call away.
    """

    n_trees: int = 30
    min_samples_leaf: int = 25
    max_depth: int = 12
    learning_rate: float = PAPER.learning_rate
    gbdt_trees: int = 60
    fm_factors: int = 8
    fm_epochs: int = 12
    linear_epochs: int = 30
    seed: int = 13

    def __post_init__(self) -> None:
        if self.n_trees < 1:
            raise ConfigError(f"n_trees must be >= 1, got {self.n_trees}")
        if self.min_samples_leaf < 1:
            raise ConfigError(
                f"min_samples_leaf must be >= 1, got {self.min_samples_leaf}"
            )
        if not 0 < self.learning_rate <= 1:
            raise ConfigError(
                f"learning_rate must be in (0, 1], got {self.learning_rate}"
            )

    @classmethod
    def paper_settings(cls) -> "ModelConfig":
        """The exact hyper-parameters of the deployed system (Section 4.2)."""
        return cls(n_trees=PAPER.rf_trees, min_samples_leaf=PAPER.rf_min_leaf)


#: Environment variable selecting the worker count of the default backend.
NUM_WORKERS_ENV = "REPRO_NUM_WORKERS"

#: Environment variable forcing a backend kind (``serial`` or ``process``).
BACKEND_ENV = "REPRO_BACKEND"


@dataclass(frozen=True)
class ExecutorConfig:
    """Execution-backend selection for the compute hot paths.

    ``backend`` is ``"serial"`` (everything in-process, the default) or
    ``"process"`` (a ``concurrent.futures`` process pool).  ``num_workers``
    of 0 means "one per CPU".  :func:`ExecutorConfig.from_env` reads the
    ``REPRO_NUM_WORKERS`` / ``REPRO_BACKEND`` environment variables so runs
    can be parallelized without touching code.
    """

    backend: str = "serial"
    num_workers: int = 0

    def __post_init__(self) -> None:
        if self.backend not in ("serial", "process"):
            raise ConfigError(
                f"backend must be 'serial' or 'process', got {self.backend!r}"
            )
        if self.num_workers < 0:
            raise ConfigError(
                f"num_workers must be >= 0, got {self.num_workers}"
            )

    @classmethod
    def from_env(cls) -> "ExecutorConfig":
        """Backend selection from the environment.

        ``REPRO_NUM_WORKERS`` > 1 implies the process backend unless
        ``REPRO_BACKEND`` overrides it; unset/invalid values mean serial.
        """
        raw = os.environ.get(NUM_WORKERS_ENV, "").strip()
        try:
            workers = int(raw) if raw else 1
        except ValueError:
            workers = 1
        backend = os.environ.get(BACKEND_ENV, "").strip().lower()
        if backend not in ("serial", "process"):
            backend = "process" if workers > 1 else "serial"
        return cls(backend=backend, num_workers=max(workers, 0))

    @property
    def effective_workers(self) -> int:
        """Workers the backend will actually use."""
        if self.backend == "serial":
            return 1
        return self.num_workers if self.num_workers > 0 else (os.cpu_count() or 1)


@dataclass(frozen=True)
class RunConfig:
    """Bundle of everything an experiment runner needs."""

    scale: ScaleConfig = field(default_factory=ScaleConfig)
    model: ModelConfig = field(default_factory=ModelConfig)
    executor: ExecutorConfig = field(default_factory=ExecutorConfig)

    @classmethod
    def small(cls, seed: int = 7) -> "RunConfig":
        """Test-sized run: ~1.2k customers, light models."""
        return cls(
            scale=ScaleConfig(population=1_200, months=9, seed=seed),
            model=ModelConfig(n_trees=12, min_samples_leaf=15, max_depth=10),
        )

    @classmethod
    def bench(cls, seed: int = 7) -> "RunConfig":
        """Benchmark-sized run: ~6k customers."""
        return cls(
            scale=ScaleConfig(population=6_000, months=9, seed=seed),
            model=ModelConfig(n_trees=24, min_samples_leaf=25, max_depth=12),
        )
