"""Watchtower SLO rules for the serving path.

:meth:`~repro.serve.service.ScoringService.slo_snapshot` folds the
hot-path instruments into gauges, the
:class:`~repro.dataplat.telemetry.TelemetrySink` lands them in
``__telemetry.metrics`` at each window, and these rules evaluate there —
the same loop the drift and recovery rules use, no serving-specific
alert plumbing.
"""

from __future__ import annotations

from ..core.watchtower import AlertRule

#: Default p99 latency budget (seconds) — the benchmark gate's 50 ms.
DEFAULT_P99_BUDGET_S = 0.050

#: Default tolerated fraction of unserved requests (shed/expired/failed).
DEFAULT_SHED_RATE_BUDGET = 0.05

_GAUGE_SQL = (
    "SELECT window, MAX(value) AS value FROM __telemetry.metrics "
    "WHERE run_id = '{run_id}' AND kind = 'gauge' "
    "AND name = '%s' GROUP BY window"
)

_COUNTER_SQL = (
    "SELECT window, SUM(value) AS value FROM __telemetry.metrics "
    "WHERE run_id = '{run_id}' AND kind = 'counter' "
    "AND name = '%s' GROUP BY window"
)


def serve_rules(
    p99_budget_s: float = DEFAULT_P99_BUDGET_S,
    shed_rate_budget: float = DEFAULT_SHED_RATE_BUDGET,
) -> tuple[AlertRule, ...]:
    """Stock serving SLO rules: page on p99 breach or shed-rate spike.

    A failed model swap only warns — the stale-model fallback keeps
    serving, but the on-call should know the fleet is pinned to an old
    version.
    """
    return (
        AlertRule(
            name="serve-p99-breach",
            sql=_GAUGE_SQL % "serve.latency_p99_s",
            threshold=float(p99_budget_s),
            comparison=">",
            severity="page",
            description="online scoring p99 latency over budget",
        ),
        AlertRule(
            name="serve-shed-spike",
            sql=_GAUGE_SQL % "serve.shed_rate",
            threshold=float(shed_rate_budget),
            comparison=">",
            severity="page",
            description="online scoring shedding more than budgeted",
        ),
        AlertRule(
            name="serve-model-swap-failed",
            sql=_COUNTER_SQL % "serve.model_swap_failures",
            threshold=0.0,
            comparison=">",
            severity="warn",
            description="model swap failed; serving stale model",
        ),
    )
