"""Micro-batching churn-scoring service with admission control.

Request lifecycle (the admission-control state machine, DESIGN.md §14)::

    submit ──▶ queued ──▶ scored     dispatched in a batch, got a score
                  │  └──▶ expired    deadline passed before dispatch
                  │  └──▶ failed     feature fetch failed after retries
                  └────▶  (never stuck: drain() flushes the queue)
    submit ──▶ shed                  queue full; retry_after_s is set

Every submitted request reaches exactly one terminal outcome — the
property tests interleave arrivals, deadlines and capacity to pin this
down.  ``shed`` is decided synchronously at admission (backpressure with
a retry hint); the other outcomes are delivered when the request's batch
completes.

Time is explicit: callers pass ``now`` (seconds on any monotone clock —
a :class:`~repro.dataplat.resilience.SimClock` in tests, wall time in
the benchmark), and the *service time* charged per batch comes from a
pluggable model.  With :class:`FixedServiceTime` a soak run is
bit-for-bit deterministic; with :class:`MeasuredServiceTime` (the
default) the benchmark charges real feature-fetch + predict latency.
The batcher itself is a single-server queue: a batch dispatches when it
is full (``max_batch``) or its oldest request has waited
``batch_window_s``, whichever is earlier, and starts no earlier than the
previous batch's completion.  Batch size is ``min(depth, max_batch)``,
so the batcher adapts monotonically to offered load — light traffic gets
latency-optimal small batches, heavy traffic throughput-optimal full
ones.
"""

from __future__ import annotations

import time
from collections import OrderedDict, deque
from dataclasses import dataclass

import numpy as np

from ..dataplat.observability import get_metrics, span
from ..errors import ServeError, StorageError, TransientError
from .feature_store import FeatureStore
from .registry import ModelRegistry

#: Latency bucket bounds (seconds) with millisecond resolution around the
#: 50 ms SLO budget — the stock ``DEFAULT_BUCKETS`` jump straight from
#: 10 ms to 50 ms, too coarse for a p99 gauge gated at 50 ms.
SERVE_LATENCY_BUCKETS = (
    0.001, 0.002, 0.005, 0.0075, 0.01, 0.015, 0.02, 0.03, 0.05,
    0.075, 0.1, 0.25, 0.5, 1.0, 5.0,
)

#: Terminal request outcomes; a request holds exactly one, exactly once.
TERMINAL_OUTCOMES = ("scored", "shed", "expired", "failed")


@dataclass
class ScoreRequest:
    """One request's ticket; mutated in place as it moves through the queue."""

    request_id: int
    customer_id: int
    arrival_s: float
    #: Absolute deadline; a request not *dispatched* by then expires.
    deadline_s: float
    outcome: str = "queued"
    score: float | None = None
    #: Model version that scored this request (uniform within a batch).
    model_version: str | None = None
    batch_id: int | None = None
    completion_s: float | None = None
    #: Backpressure hint, set only on ``shed``.
    retry_after_s: float | None = None

    @property
    def terminal(self) -> bool:
        return self.outcome in TERMINAL_OUTCOMES

    @property
    def latency_s(self) -> float | None:
        if self.completion_s is None:
            return None
        return self.completion_s - self.arrival_s

    def _finish(self, outcome: str, completion_s: float) -> None:
        if self.terminal:
            raise ServeError(
                f"request {self.request_id} already {self.outcome}; "
                f"cannot become {outcome}"
            )
        self.outcome = outcome
        self.completion_s = completion_s


@dataclass(frozen=True)
class ServeConfig:
    """Admission-control and batching knobs."""

    #: Largest vectorized predict; also the batch-full dispatch trigger.
    max_batch: int = 64
    #: Longest a queued request waits for company before dispatch.
    batch_window_s: float = 0.005
    #: Queue bound; admission sheds beyond it (``>= max_batch``).
    max_queue_depth: int = 512
    #: Deadline applied when ``submit`` is not given one.
    default_deadline_s: float = 0.250
    #: Memoized per-customer scores (valid for one model version only);
    #: ``0`` disables memoization.
    score_cache_rows: int = 4096

    def __post_init__(self) -> None:
        if self.max_batch < 1:
            raise ServeError(f"max_batch must be >= 1, got {self.max_batch}")
        if self.batch_window_s < 0:
            raise ServeError(
                f"batch_window_s must be >= 0, got {self.batch_window_s}"
            )
        if self.max_queue_depth < self.max_batch:
            raise ServeError(
                f"max_queue_depth ({self.max_queue_depth}) must be >= "
                f"max_batch ({self.max_batch}); a full batch must fit"
            )
        if self.default_deadline_s <= 0:
            raise ServeError(
                f"default_deadline_s must be > 0, got {self.default_deadline_s}"
            )
        if self.score_cache_rows < 0:
            raise ServeError(
                f"score_cache_rows must be >= 0, got {self.score_cache_rows}"
            )


class MeasuredServiceTime:
    """Charge the wall-clock seconds the batch actually took (default)."""

    def __call__(self, wall_s: float, batch_size: int) -> float:
        return wall_s


@dataclass(frozen=True)
class FixedServiceTime:
    """Deterministic service-time model: ``base_s + per_row_s * batch``.

    The real predict still runs — only the latency accounting is modeled —
    so soak and property tests are bit-for-bit reproducible while scores
    stay genuine.
    """

    base_s: float = 0.002
    per_row_s: float = 0.00002

    def __call__(self, wall_s: float, batch_size: int) -> float:
        return self.base_s + self.per_row_s * batch_size


class ScoringService:
    """Admission-controlled micro-batcher over a store and a registry."""

    def __init__(
        self,
        store: FeatureStore,
        registry: ModelRegistry,
        config: ServeConfig | None = None,
        service_time=None,
    ) -> None:
        self._store = store
        self._registry = registry
        self.config = config if config is not None else ServeConfig()
        self._service_time = (
            service_time if service_time is not None else MeasuredServiceTime()
        )
        self._queue: deque[ScoreRequest] = deque()
        self._completed: list[ScoreRequest] = []
        self._now = 0.0
        self._busy_until = 0.0
        self._next_id = 0
        self._next_batch = 0
        #: High-water mark of the queue depth (gauge mirror for tests).
        self.max_queue_seen = 0
        #: Size of every dispatched batch, in dispatch order.
        self.batch_sizes: list[int] = []
        self._score_cache: OrderedDict[int, float] = OrderedDict()
        self._cache_version: str | None = None
        self._telemetry_sink = None
        self._telemetry_interval = 0.0
        self._telemetry_next = 0.0
        self._telemetry_window = 0
        registry.subscribe(self._on_model_swap)

    # ------------------------------------------------------------------
    # request path

    def submit(
        self, customer_id: int, now: float, deadline_s: float | None = None
    ) -> ScoreRequest:
        """Admit one request at time ``now``; returns its ticket.

        A ``shed`` ticket (queue at ``max_queue_depth``) is the immediate
        response, carrying ``retry_after_s``; any other ticket resolves on
        a later :meth:`poll`/:meth:`drain` once its batch completes.
        """
        self._advance(now)
        metrics = get_metrics()
        metrics.counter("serve.requests").inc()
        deadline = (
            self.config.default_deadline_s if deadline_s is None else deadline_s
        )
        if deadline <= 0:
            raise ServeError(f"deadline_s must be > 0, got {deadline}")
        request = ScoreRequest(
            request_id=self._next_id,
            customer_id=int(customer_id),
            arrival_s=now,
            deadline_s=now + deadline,
        )
        self._next_id += 1
        if len(self._queue) >= self.config.max_queue_depth:
            request.retry_after_s = (
                max(self._busy_until - now, 0.0) + self.config.batch_window_s
            )
            request._finish("shed", now)
            metrics.counter("serve.shed").inc()
            return request
        self._queue.append(request)
        depth = len(self._queue)
        self.max_queue_seen = max(self.max_queue_seen, depth)
        metrics.gauge("serve.queue_depth").set(depth)
        # A batch-full trigger may now be due (idle server, depth hit
        # max_batch); requests never wait past their trigger when the
        # server could already take them.
        self._pump()
        return request

    def poll(self, now: float) -> list[ScoreRequest]:
        """Advance time to ``now`` and collect newly terminal tickets."""
        self._advance(now)
        done, self._completed = self._completed, []
        return done

    def drain(self, now: float | None = None) -> list[ScoreRequest]:
        """Flush the queue (ignoring batch windows) and collect tickets."""
        if now is not None:
            self._advance(now)
        while self._queue:
            start = max(self._trigger_time(), self._busy_until, self._now)
            self._dispatch(start)
        self._now = max(self._now, self._busy_until)
        done, self._completed = self._completed, []
        return done

    def score(self, customer_ids, now: float | None = None) -> np.ndarray:
        """Score synchronously *through the micro-batch path*.

        Every id goes through submit → batch → vectorized predict exactly
        like concurrent traffic would (deadline-free, so nothing expires),
        and the queue is drained before returning.  Used by the parity
        tests: the scores must be bit-identical to the batch predictor on
        the same snapshot.
        """
        start = self._now if now is None else now
        self._advance(start)
        tickets = []
        for cid in np.asarray(customer_ids, dtype=np.int64).tolist():
            if len(self._queue) >= self.config.max_queue_depth:
                # Synchronous callers absorb backpressure by waiting
                # (draining) instead of being shed.
                self.drain()
            tickets.append(
                self.submit(cid, now=self._now, deadline_s=float("inf"))
            )
        self.drain()
        bad = [t for t in tickets if t.outcome != "scored"]
        if bad:
            raise ServeError(
                f"{len(bad)} of {len(tickets)} synchronous requests ended "
                f"{bad[0].outcome!r}"
            )
        return np.array([t.score for t in tickets], dtype=np.float64)

    # ------------------------------------------------------------------
    # SLO surface

    def slo_snapshot(self) -> dict:
        """Fold the hot-path instruments into SLO gauges and return them.

        Sets ``serve.latency_p50_s`` / ``serve.latency_p99_s`` (from the
        latency histogram, conservative bucket-upper-bound quantiles) and
        ``serve.shed_rate`` (sheds + expiries + failures over submissions)
        so a :class:`~repro.dataplat.telemetry.TelemetrySink` window picks
        them up for the watchtower's serve rules.
        """
        metrics = get_metrics()
        hist = metrics.histogram("serve.latency_s", SERVE_LATENCY_BUCKETS)
        p50 = hist.quantile(0.50)
        p99 = hist.quantile(0.99)
        submitted = metrics.counter("serve.requests").value
        unserved = (
            metrics.counter("serve.shed").value
            + metrics.counter("serve.expired").value
            + metrics.counter("serve.failures").value
        )
        shed_rate = unserved / submitted if submitted else 0.0
        metrics.gauge("serve.latency_p50_s").set(p50)
        metrics.gauge("serve.latency_p99_s").set(p99)
        metrics.gauge("serve.shed_rate").set(shed_rate)
        metrics.gauge("serve.queue_depth_peak").set(self.max_queue_seen)
        return {
            "latency_p50_s": p50,
            "latency_p99_s": p99,
            "shed_rate": shed_rate,
            "queue_depth_peak": self.max_queue_seen,
        }

    def attach_telemetry(
        self,
        sink,
        interval_s: float = 1.0,
        window_base: int = 0,
    ) -> None:
        """Flush SLO gauges into a telemetry sink every ``interval_s``.

        After attaching, every ``interval_s`` of *service* time (the
        explicit clock requests arrive on) folds :meth:`slo_snapshot` into
        one ``__telemetry.metrics`` window via the sink's
        :meth:`~repro.dataplat.telemetry.TelemetrySink.record_gauges` —
        window indices count up from ``window_base``, one per flush, so
        p99/shed-rate history is SQL-queryable without the caller ever
        asking for a snapshot.
        """
        if interval_s <= 0:
            raise ServeError(
                f"telemetry flush interval must be > 0, got {interval_s}"
            )
        self._telemetry_sink = sink
        self._telemetry_interval = float(interval_s)
        self._telemetry_next = self._now + float(interval_s)
        self._telemetry_window = int(window_base)

    def _flush_telemetry(self) -> None:
        snapshot = self.slo_snapshot()
        self._telemetry_sink.record_gauges(
            self._telemetry_window,
            {f"serve.{name}": float(value) for name, value in snapshot.items()},
        )
        self._telemetry_window += 1
        self._telemetry_next = self._now + self._telemetry_interval

    # ------------------------------------------------------------------
    # internals

    def _on_model_swap(self, version: str) -> None:
        # Memoized scores are only valid for the model that produced them.
        self._score_cache.clear()
        self._cache_version = version

    def _advance(self, now: float) -> None:
        if now < self._now:
            raise ServeError(
                f"time went backwards: {now} < {self._now}"
            )
        self._now = now
        self._pump()
        get_metrics().gauge("serve.queue_depth").set(len(self._queue))
        if self._telemetry_sink is not None and self._now >= self._telemetry_next:
            self._flush_telemetry()

    def _pump(self) -> None:
        """Dispatch every batch whose start time has arrived.

        A batch starts at ``max(trigger, busy_until)`` — single-server
        queueing — and only when that instant is not in the future:
        while the server is busy, requests *stay queued*, which is what
        lets the queue deepen under load (adaptive batch growth) and
        admission control actually shed at the bound.
        """
        while self._queue:
            start = max(self._trigger_time(), self._busy_until)
            if start > self._now:
                break
            self._dispatch(start)

    def _trigger_time(self) -> float:
        """When the head batch is due: window expiry or batch-full time."""
        window_trigger = self._queue[0].arrival_s + self.config.batch_window_s
        if len(self._queue) >= self.config.max_batch:
            full_at = self._queue[self.config.max_batch - 1].arrival_s
            return min(window_trigger, full_at)
        return window_trigger

    def _dispatch(self, start_s: float) -> None:
        size = min(len(self._queue), self.config.max_batch)
        batch = [self._queue.popleft() for _ in range(size)]
        batch_id = self._next_batch
        self._next_batch += 1
        self.batch_sizes.append(size)
        metrics = get_metrics()
        metrics.histogram("serve.batch_size", (1, 2, 4, 8, 16, 32, 64, 128, 256)).observe(size)

        # Capture the active model ONCE per batch: a registry swap landing
        # mid-batch must never split one response across model versions.
        version, model = self._registry.current()

        live: list[ScoreRequest] = []
        for request in batch:
            if request.deadline_s < start_s:
                request._finish("expired", start_s)
                metrics.counter("serve.expired").inc()
            else:
                live.append(request)

        scores: np.ndarray | None = None
        failure: Exception | None = None
        wall_s = 0.0
        with span(
            "serve.batch",
            batch_id=batch_id,
            size=size,
            model_version=version,
        ) as sp:
            if live:
                t0 = time.perf_counter()
                try:
                    scores = self._score_batch(live, version, model)
                except (TransientError, StorageError, ServeError) as exc:
                    failure = exc
                wall_s = time.perf_counter() - t0
            service_s = (
                float(self._service_time(wall_s, len(live))) if live else 0.0
            )
            completion = start_s + service_s
            self._busy_until = max(self._busy_until, completion)
            if failure is not None:
                for request in live:
                    request._finish("failed", completion)
                metrics.counter("serve.failures").inc(len(live))
                sp.set_tag("outcome", f"failed: {failure}")
            elif live:
                latency_hist = metrics.histogram(
                    "serve.latency_s", SERVE_LATENCY_BUCKETS
                )
                for request, value in zip(live, scores):
                    request.score = float(value)
                    request.model_version = version
                    request.batch_id = batch_id
                    request._finish("scored", completion)
                    latency_hist.observe(completion - request.arrival_s)
                metrics.counter("serve.scored").inc(len(live))
                sp.set_tag("outcome", "scored")
            sp.incr("scored", len(live) if failure is None else 0)
            sp.incr("expired", size - len(live))
        self._completed.extend(batch)
        metrics.gauge("serve.queue_depth").set(len(self._queue))

    def _score_batch(
        self, live: list[ScoreRequest], version: str, model
    ) -> np.ndarray:
        cids = [request.customer_id for request in live]
        out = np.empty(len(cids), dtype=np.float64)
        use_cache = self.config.score_cache_rows > 0
        if use_cache and self._cache_version != version:
            # Defensive: the subscribe() hook already clears on swap, but a
            # registry shared by several services only notifies after its
            # own swap; never serve another version's memoized score.
            self._score_cache.clear()
            self._cache_version = version
        need_idx: list[int] = []
        for i, cid in enumerate(cids):
            cached = self._score_cache.get(cid) if use_cache else None
            if cached is None:
                need_idx.append(i)
            else:
                self._score_cache.move_to_end(cid)
                out[i] = cached
        if need_idx:
            need_ids = [cids[i] for i in need_idx]
            features = self._store.lookup(need_ids)
            fresh = np.asarray(model.predict_proba(features), dtype=np.float64)
            for i, value in zip(need_idx, fresh.tolist()):
                out[i] = value
                if use_cache:
                    self._score_cache[cids[i]] = value
                    self._score_cache.move_to_end(cids[i])
                    while len(self._score_cache) > self.config.score_cache_rows:
                        self._score_cache.popitem(last=False)
        return out
