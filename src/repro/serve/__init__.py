"""Online churn-scoring service.

The serving stack the batch platform was missing: a
:class:`FeatureStore` materializing wide-table snapshots for point
lookups, a :class:`ModelRegistry` swapping trained models atomically,
and a :class:`ScoringService` micro-batching concurrent requests into
vectorized predicts under admission control — plus a deterministic load
generator and the watchtower SLO rules for the hot path.
"""

from .feature_store import SERVE_DATABASE, FeatureStore, SnapshotInfo
from .loadgen import ArrivalPlan, LoadProfile, LoadReport, arrival_plan, drive
from .registry import ModelRegistry
from .rules import serve_rules
from .service import (
    SERVE_LATENCY_BUCKETS,
    TERMINAL_OUTCOMES,
    FixedServiceTime,
    MeasuredServiceTime,
    ScoreRequest,
    ScoringService,
    ServeConfig,
)

__all__ = [
    "SERVE_DATABASE",
    "SERVE_LATENCY_BUCKETS",
    "TERMINAL_OUTCOMES",
    "ArrivalPlan",
    "FeatureStore",
    "FixedServiceTime",
    "LoadProfile",
    "LoadReport",
    "MeasuredServiceTime",
    "ModelRegistry",
    "ScoreRequest",
    "ScoringService",
    "ServeConfig",
    "SnapshotInfo",
    "arrival_plan",
    "drive",
    "serve_rules",
]
