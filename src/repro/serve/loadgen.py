"""Deterministic open-loop load generator for the scoring service.

``arrival_plan`` draws a seeded Poisson arrival process with a skewed
customer-popularity mix (a small hot set takes a fixed share of
traffic), and ``drive`` replays it against a
:class:`~repro.serve.service.ScoringService` — submissions carry the
plan's *logical* arrival times, so with a :class:`FixedServiceTime`
model the whole run (batch boundaries, latencies, outcomes) is
bit-for-bit reproducible from the seed, while wall-clock throughput is
measured around the replay loop for the benchmark.

Open loop means arrivals do not wait for responses — exactly the regime
where admission control earns its keep: when offered load exceeds
capacity the queue fills and the service must shed, not collapse.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from ..errors import ServeError
from .service import ScoringService


@dataclass(frozen=True)
class LoadProfile:
    """Shape of one synthetic traffic run."""

    rate_rps: float = 2000.0
    duration_s: float = 1.0
    population: int = 10_000
    seed: int = 0
    #: Fraction of the population forming the hot set...
    hot_fraction: float = 0.05
    #: ...and the share of traffic it receives.
    hot_weight: float = 0.5
    deadline_s: float = 0.250
    #: Customer ids are ``id_base + [0, population)`` unless ``drive`` is
    #: given an explicit universe.
    id_base: int = 0

    def __post_init__(self) -> None:
        if self.rate_rps <= 0:
            raise ServeError(f"rate_rps must be > 0, got {self.rate_rps}")
        if self.duration_s <= 0:
            raise ServeError(f"duration_s must be > 0, got {self.duration_s}")
        if self.population < 1:
            raise ServeError(f"population must be >= 1, got {self.population}")
        if not 0.0 < self.hot_fraction <= 1.0:
            raise ServeError(
                f"hot_fraction must be in (0, 1], got {self.hot_fraction}"
            )
        if not 0.0 <= self.hot_weight <= 1.0:
            raise ServeError(
                f"hot_weight must be in [0, 1], got {self.hot_weight}"
            )
        if self.deadline_s <= 0:
            raise ServeError(f"deadline_s must be > 0, got {self.deadline_s}")


@dataclass(frozen=True)
class ArrivalPlan:
    """A concrete, replayable arrival sequence."""

    times_s: np.ndarray
    customer_ids: np.ndarray
    deadline_s: float

    @property
    def n_requests(self) -> int:
        return len(self.times_s)


def arrival_plan(
    profile: LoadProfile, customer_ids: np.ndarray | None = None
) -> ArrivalPlan:
    """Draw the seeded arrival process for ``profile``.

    ``customer_ids`` overrides the id universe (e.g. real ``imsi`` values
    from a materialized snapshot); its length caps the population.
    """
    rng = np.random.default_rng(profile.seed)
    times: list[np.ndarray] = []
    horizon = 0.0
    # Draw inter-arrival gaps in slabs until the duration is covered; the
    # slab size only affects speed, never the stream (one rng, one order).
    slab = max(int(profile.rate_rps * profile.duration_s * 1.2) + 16, 64)
    while horizon < profile.duration_s:
        gaps = rng.exponential(1.0 / profile.rate_rps, size=slab)
        chunk = horizon + np.cumsum(gaps)
        times.append(chunk)
        horizon = float(chunk[-1])
    all_times = np.concatenate(times)
    all_times = all_times[all_times < profile.duration_s]
    n = len(all_times)

    if customer_ids is None:
        universe = profile.id_base + np.arange(profile.population, dtype=np.int64)
    else:
        universe = np.asarray(customer_ids, dtype=np.int64)
        if len(universe) == 0:
            raise ServeError("customer id universe is empty")
    hot_n = max(1, int(len(universe) * profile.hot_fraction))
    is_hot = rng.random(n) < profile.hot_weight
    hot_pick = universe[rng.integers(0, hot_n, size=n)]
    cold_pick = universe[rng.integers(0, len(universe), size=n)]
    ids = np.where(is_hot, hot_pick, cold_pick).astype(np.int64)
    return ArrivalPlan(
        times_s=all_times, customer_ids=ids, deadline_s=profile.deadline_s
    )


@dataclass
class LoadReport:
    """Aggregate outcome of one driven run."""

    submitted: int
    scored: int
    shed: int
    expired: int
    failed: int
    p50_s: float
    p99_s: float
    max_latency_s: float
    mean_batch_size: float
    n_batches: int
    max_queue_depth: int
    wall_s: float
    throughput_rps: float

    @property
    def unserved(self) -> int:
        return self.shed + self.expired + self.failed

    @property
    def unaccounted(self) -> int:
        """Requests without a terminal outcome — must always be zero."""
        return self.submitted - (
            self.scored + self.shed + self.expired + self.failed
        )

    def render(self) -> str:
        lines = [
            f"requests   {self.submitted} "
            f"(scored {self.scored}, shed {self.shed}, "
            f"expired {self.expired}, failed {self.failed})",
            f"latency    p50 {self.p50_s * 1e3:.2f} ms, "
            f"p99 {self.p99_s * 1e3:.2f} ms, "
            f"max {self.max_latency_s * 1e3:.2f} ms",
            f"batching   {self.n_batches} batches, "
            f"mean size {self.mean_batch_size:.1f}, "
            f"peak queue {self.max_queue_depth}",
            f"throughput {self.throughput_rps:,.0f} req/s "
            f"({self.wall_s * 1e3:.0f} ms wall)",
        ]
        return "\n".join(lines)


def drive(service: ScoringService, plan: ArrivalPlan) -> LoadReport:
    """Replay ``plan`` against ``service`` and aggregate the outcome.

    Latency percentiles are computed exactly from the scored tickets
    (``np.percentile``), not from histogram buckets, so deterministic
    runs assert on exact numbers; the metrics registry still sees every
    observation through the service's own instruments.
    """
    batches_before = len(service.batch_sizes)
    wall_start = time.perf_counter()
    tickets = [
        service.submit(cid, now=arrival, deadline_s=plan.deadline_s)
        for arrival, cid in zip(
            plan.times_s.tolist(), plan.customer_ids.tolist()
        )
    ]
    service.drain()
    wall_s = time.perf_counter() - wall_start

    outcomes = {name: 0 for name in ("scored", "shed", "expired", "failed")}
    latencies: list[float] = []
    for ticket in tickets:
        if ticket.outcome in outcomes:
            outcomes[ticket.outcome] += 1
        if ticket.outcome == "scored":
            latencies.append(ticket.latency_s)
    lat = np.asarray(latencies, dtype=np.float64)
    batch_sizes = service.batch_sizes[batches_before:]
    return LoadReport(
        submitted=len(tickets),
        scored=outcomes["scored"],
        shed=outcomes["shed"],
        expired=outcomes["expired"],
        failed=outcomes["failed"],
        p50_s=float(np.percentile(lat, 50)) if len(lat) else 0.0,
        p99_s=float(np.percentile(lat, 99)) if len(lat) else 0.0,
        max_latency_s=float(lat.max()) if len(lat) else 0.0,
        mean_batch_size=(
            float(np.mean(batch_sizes)) if batch_sizes else 0.0
        ),
        n_batches=len(batch_sizes),
        max_queue_depth=service.max_queue_seen,
        wall_s=wall_s,
        throughput_rps=len(tickets) / wall_s if wall_s > 0 else float("inf"),
    )
