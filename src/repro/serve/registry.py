"""Versioned model registry with atomic, no-downtime swaps.

The registry holds fitted scoring models (anything with a vectorized
``predict_proba``) keyed by version string.  :meth:`ModelRegistry.activate`
replaces the active model with a single reference assignment, so an
in-flight batch that captured ``(version, model)`` before the swap keeps
scoring against the old model while the next batch picks up the new one —
no downtime, and never a mixed-version response.

Swaps notify subscribers (the :class:`~repro.serve.service.ScoringService`
uses this to drop memoized per-customer scores, which are only valid for
the model that produced them) and bump the ``serve.model_swaps`` counter.
A swap whose loader fails on storage falls back to the stale model —
serving a slightly old score beats serving none — recorded by the
``serve.model_swap_failures`` counter the watchtower rules alert on.
"""

from __future__ import annotations

from collections.abc import Callable

from ..dataplat.observability import get_metrics, span
from ..errors import ServeError, StorageError, TransientError
from ..ml.persistence import load_forest, save_forest

#: Database used for durable model payloads in the block store.
MODEL_DATABASE = "serve"


class ModelRegistry:
    """In-memory model versions plus an atomically swappable active slot."""

    def __init__(self) -> None:
        self._models: dict[str, object] = {}
        self._current: tuple[str, object] | None = None
        self._subscribers: list[Callable[[str], None]] = []
        self._swaps = 0

    @property
    def versions(self) -> tuple[str, ...]:
        return tuple(self._models)

    @property
    def active_version(self) -> str | None:
        return self._current[0] if self._current is not None else None

    @property
    def swaps(self) -> int:
        return self._swaps

    def subscribe(self, callback: Callable[[str], None]) -> None:
        """Register a callback invoked with the new version after a swap."""
        self._subscribers.append(callback)

    def publish(
        self, version: str, model, *, activate: bool = False
    ) -> None:
        """Register ``model`` under ``version`` (optionally activating it)."""
        if not version:
            raise ServeError("model version must be non-empty")
        if version in self._models:
            raise ServeError(f"model version {version!r} already published")
        if not callable(getattr(model, "predict_proba", None)):
            raise ServeError(
                f"model for version {version!r} has no predict_proba"
            )
        self._models[version] = model
        if activate:
            self.activate(version)

    def publish_durable(
        self, catalog, version: str, forest, *, activate: bool = False
    ) -> None:
        """Publish a random forest and persist its bytes to the block store.

        The payload lands at ``/models/serve/<version>.npz`` on the same
        replicated storage as the feature tables, so another process can
        :meth:`activate` the version with ``loader=`` a catalog read.
        """
        save_forest(forest, catalog, version, database=MODEL_DATABASE)
        self.publish(version, forest, activate=activate)

    def activate(
        self,
        version: str,
        loader: Callable[[], object] | None = None,
    ) -> bool:
        """Make ``version`` the active model; returns ``True`` on success.

        With ``loader``, the model object is (re)loaded first — e.g. read
        from the block store — and a transient/storage failure leaves the
        previously active model serving (*stale-model fallback*), bumps
        ``serve.model_swap_failures`` and returns ``False`` instead of
        raising: mid-traffic, a failed swap must degrade, not crash.
        """
        metrics = get_metrics()
        with span("serve.model_swap", version=version) as sp:
            if loader is not None:
                try:
                    model = loader()
                except (TransientError, StorageError):
                    metrics.counter("serve.model_swap_failures").inc()
                    sp.set_tag("outcome", "stale-fallback")
                    return False
                if not callable(getattr(model, "predict_proba", None)):
                    raise ServeError(
                        f"loaded model for {version!r} has no predict_proba"
                    )
                self._models[version] = model
            else:
                model = self._models.get(version)
                if model is None:
                    raise ServeError(f"unknown model version {version!r}")
            self._current = (version, model)
            self._swaps += 1
            metrics.counter("serve.model_swaps").inc()
            sp.set_tag("outcome", "swapped")
        for callback in list(self._subscribers):
            callback(version)
        return True

    def activate_from_store(self, catalog, version: str) -> bool:
        """Activate ``version`` by loading its persisted bytes."""
        return self.activate(
            version,
            loader=lambda: load_forest(catalog, version, database=MODEL_DATABASE),
        )

    def current(self) -> tuple[str, object]:
        """The active ``(version, model)`` pair, atomically read."""
        current = self._current
        if current is None:
            raise ServeError("no active model; call activate() first")
        return current
