"""Online feature store: snapshot materialization + point lookups.

The batch side of the platform produces wide-table
:class:`~repro.features.spec.FeatureMatrix` snapshots; the serving side
needs cheap point lookups by customer id.  The store bridges the two:

* :meth:`FeatureStore.materialize` sorts a snapshot by ``imsi`` and saves
  it as a handful of contiguous-id-range partitions ("buckets") in the
  catalog.  Because the buckets cover disjoint id ranges, each bucket's
  ``imsi`` zone map is disjoint too, and a point lookup's ``in``
  predicate lets :meth:`~repro.dataplat.catalog.Catalog.scan` prune every
  bucket that cannot hold a requested id — the point-lookup path is the
  same zone-map machinery the analytical scans use, not a parallel
  keyed index.
* :meth:`FeatureStore.lookup` serves a batch of ids from an LRU row cache
  first, fetching only the misses through a pruned scan.  Transient
  block-store faults are absorbed by a :class:`RetryPolicy`; a fetch that
  still fails raises, and the scoring service turns that into a
  ``failed`` outcome rather than a crash.

Float64 feature chunks use the raw ``<f8`` codec, so a row read back for
online scoring is bit-identical to the in-memory matrix the batch path
scores — the parity tests pin this down.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass

import numpy as np

from ..dataplat.catalog import Catalog
from ..dataplat.columnar import ScanPredicate
from ..dataplat.observability import get_metrics, span
from ..dataplat.resilience import RetryPolicy, SimClock
from ..dataplat.table import Table
from ..errors import ServeError
from ..features.spec import FeatureMatrix

#: Database the store materializes snapshots into.
SERVE_DATABASE = "serve"


@dataclass(frozen=True)
class SnapshotInfo:
    """What the store knows about one materialized snapshot."""

    name: str
    table: str
    feature_names: tuple[str, ...]
    n_rows: int
    buckets: int


class FeatureStore:
    """Snapshot materializer + cached point-lookup reader.

    Parameters
    ----------
    catalog:
        Backing catalog; a fresh in-memory one when omitted.
    database:
        Catalog database snapshots land in (created if missing).
    cache_rows:
        LRU row-cache capacity in customer rows; ``0`` disables caching
        (every lookup hits storage — the chaos tests use this to keep the
        fault-injected read path hot).
    retry_policy:
        Backoff schedule for transient scan failures; ``None`` scans once.
    clock:
        Simulated clock charged for retry backoff sleeps.
    """

    def __init__(
        self,
        catalog: Catalog | None = None,
        database: str = SERVE_DATABASE,
        cache_rows: int = 8192,
        retry_policy: RetryPolicy | None = None,
        clock: SimClock | None = None,
    ) -> None:
        if cache_rows < 0:
            raise ServeError(f"cache_rows must be >= 0, got {cache_rows}")
        self._catalog = catalog if catalog is not None else Catalog()
        self._database = database
        self._catalog.create_database(database)
        self._cache_rows = int(cache_rows)
        self._retry = retry_policy
        self._clock = clock if clock is not None else SimClock()
        self._cache: OrderedDict[int, np.ndarray] = OrderedDict()
        self._snapshots: dict[str, SnapshotInfo] = {}
        self._active: SnapshotInfo | None = None

    @property
    def catalog(self) -> Catalog:
        return self._catalog

    @property
    def active_snapshot(self) -> SnapshotInfo | None:
        return self._active

    @property
    def feature_names(self) -> tuple[str, ...]:
        return self._require_active().feature_names

    def materialize(
        self, matrix: FeatureMatrix, snapshot: str, buckets: int = 8
    ) -> SnapshotInfo:
        """Persist one feature snapshot as id-range-bucketed partitions.

        Rows are sorted by ``imsi`` and split into ``buckets`` contiguous
        ranges, one catalog partition each, so the per-partition ``imsi``
        zone maps tile the id space without overlap.  The new snapshot
        becomes the active one and the row cache is invalidated (cached
        rows belong to the previous snapshot).
        """
        if not snapshot or any(ch in snapshot for ch in "/= "):
            raise ServeError(f"invalid snapshot name {snapshot!r}")
        if matrix.n_rows == 0:
            raise ServeError(f"snapshot {snapshot!r} has no rows")
        if buckets < 1:
            raise ServeError(f"buckets must be >= 1, got {buckets}")
        ids = matrix.imsi
        if len(np.unique(ids)) != len(ids):
            raise ServeError(
                f"snapshot {snapshot!r} has duplicate customer ids"
            )
        order = np.argsort(ids, kind="stable")
        ids = ids[order]
        values = matrix.values[order]
        buckets = min(int(buckets), len(ids))
        table = f"features_{snapshot}"
        with span(
            "serve.store.materialize",
            snapshot=snapshot,
            rows=int(len(ids)),
            buckets=buckets,
        ):
            for b, idx in enumerate(np.array_split(np.arange(len(ids)), buckets)):
                cols: dict[str, np.ndarray] = {"imsi": ids[idx]}
                for j, name in enumerate(matrix.names):
                    cols[name] = values[idx, j]
                self._catalog.save(
                    Table.from_arrays(**cols),
                    table,
                    database=self._database,
                    partition=f"bucket={b:04d}",
                )
        info = SnapshotInfo(
            name=snapshot,
            table=table,
            feature_names=tuple(matrix.names),
            n_rows=int(len(ids)),
            buckets=buckets,
        )
        self._snapshots[snapshot] = info
        self._active = info
        self._cache.clear()
        get_metrics().counter("serve.store.materialized_rows").inc(len(ids))
        return info

    def attach(self, snapshot: str) -> SnapshotInfo:
        """Make a previously materialized snapshot the active one.

        Snapshots materialized by another process are rediscovered from
        the catalog's schema metadata (feature order is the saved column
        order minus ``imsi``).
        """
        info = self._snapshots.get(snapshot)
        if info is None:
            table = f"features_{snapshot}"
            if not self._catalog.exists(table, self._database):
                raise ServeError(f"unknown snapshot {snapshot!r}")
            tinfo = self._catalog.info(table, self._database)
            names = tuple(n for n in tinfo.schema.names if n != "imsi")
            n_rows = int(
                self._catalog.scan(
                    table, self._database, columns=["imsi"]
                ).num_rows
            )
            info = SnapshotInfo(
                name=snapshot,
                table=table,
                feature_names=names,
                n_rows=n_rows,
                buckets=len(tinfo.partitions),
            )
            self._snapshots[snapshot] = info
        if self._active is not info:
            self._cache.clear()
        self._active = info
        return info

    def lookup(self, customer_ids) -> np.ndarray:
        """Feature rows for ``customer_ids``, in request order.

        Returns an ``(n, n_features)`` float64 matrix.  Unknown ids raise
        :class:`ServeError`; transient storage faults that survive the
        retry schedule propagate as :class:`TransientError` for the
        caller's admission control to absorb.
        """
        info = self._require_active()
        cids = np.asarray(customer_ids, dtype=np.int64)
        metrics = get_metrics()
        rows: dict[int, np.ndarray] = {}
        need: list[int] = []
        with span(
            "serve.store.lookup", snapshot=info.name, rows=int(len(cids))
        ) as sp:
            for cid in dict.fromkeys(cids.tolist()):
                row = self._cache.get(cid)
                if row is not None:
                    self._cache.move_to_end(cid)
                    rows[cid] = row
                else:
                    need.append(cid)
            hits = len(rows)
            if need:
                rows.update(self._fetch(info, need))
            metrics.counter("serve.store.hits").inc(hits)
            metrics.counter("serve.store.misses").inc(len(need))
            sp.incr("cache_hits", hits)
            sp.incr("cache_misses", len(need))
            out = np.empty((len(cids), len(info.feature_names)), dtype=np.float64)
            for i, cid in enumerate(cids.tolist()):
                out[i] = rows[cid]
        return out

    def _fetch(
        self, info: SnapshotInfo, need: list[int]
    ) -> dict[int, np.ndarray]:
        """Read the missing rows through a zone-map-pruned scan."""
        predicate = [ScanPredicate("imsi", "in", tuple(int(c) for c in need))]

        def read() -> Table:
            return self._catalog.scan(
                info.table, self._database, predicate=predicate
            )

        if self._retry is not None:
            piece = self._retry.call(read, clock=self._clock)
        else:
            piece = read()
        scan_ids = piece.column("imsi")
        wanted = np.asarray(need, dtype=np.int64)
        if len(scan_ids) == 0:
            raise ServeError(
                f"unknown customer ids in snapshot {info.name!r}: "
                f"{sorted(int(m) for m in wanted)[:10]}"
            )
        pos = np.searchsorted(scan_ids, wanted)
        clipped = np.minimum(pos, len(scan_ids) - 1)
        ok = (pos < len(scan_ids)) & (scan_ids[clipped] == wanted)
        if not ok.all():
            missing = wanted[~ok]
            raise ServeError(
                f"unknown customer ids in snapshot {info.name!r}: "
                f"{sorted(int(m) for m in missing)[:10]}"
            )
        if info.feature_names:
            mat = np.column_stack(
                [piece.column(n) for n in info.feature_names]
            ).astype(np.float64, copy=False)
        else:
            mat = np.empty((piece.num_rows, 0), dtype=np.float64)
        fetched: dict[int, np.ndarray] = {}
        for cid, p in zip(need, pos.tolist()):
            row = mat[p].copy()
            fetched[cid] = row
            if self._cache_rows:
                self._cache[cid] = row
                self._cache.move_to_end(cid)
                while len(self._cache) > self._cache_rows:
                    self._cache.popitem(last=False)
                    get_metrics().counter("serve.store.evictions").inc()
        get_metrics().counter("serve.store.rows_fetched").inc(len(need))
        return fetched

    def _require_active(self) -> SnapshotInfo:
        if self._active is None:
            raise ServeError(
                "no active snapshot; call materialize() or attach() first"
            )
        return self._active
