"""From-scratch ML substrate.

The paper's classifiers (Section 4.2/5.8) and unsupervised feature extractors
(Section 4.1) re-implemented on numpy:

* :mod:`.metrics` — AUC (Eq. 10), PR-AUC, recall@U (Eq. 8), precision@U (Eq. 9)
* :mod:`.tree` / :mod:`.forest` — CART with Gini improvement (Eq. 5–6),
  Random Forest (Eq. 4) with feature importance (Eq. 7)
* :mod:`.gbdt` — gradient boosted decision trees
* :mod:`.linear` — L2-regularised logistic regression (LIBLINEAR analogue)
* :mod:`.fm` — factorization machines (Eq. 3, LIBFM analogue)
* :mod:`.lda` — latent Dirichlet allocation (collapsed Gibbs sampling)
* :mod:`.graphalgo` — weighted PageRank (Eq. 1) and label propagation
* :mod:`.sampling` — the four imbalance treatments of Table 7
* :mod:`.preprocess` — standardization and quantile binning / one-hot
* :mod:`.calibration` — Platt / isotonic recalibration of churn likelihoods
* :mod:`.persistence` — forest serialization for the monthly retrain cycle
"""

from .calibration import IsotonicCalibrator, PlattScaler, brier_score
from .fm import FactorizationMachine
from .forest import RandomForestClassifier
from .gbdt import GradientBoostedTrees
from .graphalgo import label_propagation, pagerank
from .lda import LatentDirichletAllocation
from .linear import LogisticRegression
from .metrics import (
    average_precision,
    pr_auc,
    precision_at,
    recall_at,
    roc_auc,
)
from .sampling import rebalance
from .tree import DecisionTree

__all__ = [
    "DecisionTree",
    "FactorizationMachine",
    "IsotonicCalibrator",
    "PlattScaler",
    "brier_score",
    "GradientBoostedTrees",
    "LatentDirichletAllocation",
    "LogisticRegression",
    "RandomForestClassifier",
    "average_precision",
    "label_propagation",
    "pagerank",
    "pr_auc",
    "precision_at",
    "recall_at",
    "rebalance",
    "roc_auc",
]
