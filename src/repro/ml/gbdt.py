"""Gradient boosted decision trees (the GBDT baseline of Section 5.8).

Binary classification with logistic loss: each stage fits a variance-
criterion CART tree to the negative gradient (residual ``y - p``), then
replaces the leaf values with one Newton step
``sum(residual) / sum(p (1 - p))`` per leaf, and the ensemble advances with
the paper's 0.1 learning rate.
"""

from __future__ import annotations

import numpy as np

from ..config import PAPER
from ..errors import ModelError, NotFittedError
from .tree import DecisionTree


def _sigmoid(z: np.ndarray) -> np.ndarray:
    return 1.0 / (1.0 + np.exp(-np.clip(z, -35, 35)))


class GradientBoostedTrees:
    """LogitBoost-style GBDT for churn scoring.

    Parameters
    ----------
    n_trees:
        Boosting stages.
    learning_rate:
        Shrinkage; the paper fixes 0.1.
    max_depth / min_samples_leaf:
        Base-tree capacity controls (boosted trees are kept shallow).
    """

    def __init__(
        self,
        n_trees: int = 100,
        learning_rate: float = PAPER.learning_rate,
        max_depth: int = 4,
        min_samples_leaf: int = 20,
        seed: int = 0,
    ) -> None:
        if n_trees < 1:
            raise ModelError(f"n_trees must be >= 1, got {n_trees}")
        if not 0 < learning_rate <= 1:
            raise ModelError(f"learning_rate must be in (0, 1], got {learning_rate}")
        self.n_trees = n_trees
        self.learning_rate = learning_rate
        self.max_depth = max_depth
        self.min_samples_leaf = min_samples_leaf
        self.seed = seed
        self._trees: list[DecisionTree] | None = None
        self._base_score = 0.0

    def fit(
        self,
        x: np.ndarray,
        y: np.ndarray,
        sample_weight: np.ndarray | None = None,
    ) -> "GradientBoostedTrees":
        x = np.asarray(x, dtype=np.float64)
        y = np.asarray(y, dtype=np.float64)
        if len(x) != len(y):
            raise ModelError(f"x has {len(x)} rows but y has {len(y)}")
        labels = set(np.unique(y).tolist())
        if not labels <= {0.0, 1.0}:
            raise ModelError(f"labels must be 0/1, got {labels}")
        if sample_weight is None:
            sample_weight = np.ones(len(y))
        else:
            sample_weight = np.asarray(sample_weight, dtype=np.float64)
        prior = float(np.average(y, weights=sample_weight))
        prior = min(max(prior, 1e-6), 1 - 1e-6)
        self._base_score = float(np.log(prior / (1 - prior)))
        raw = np.full(len(y), self._base_score)
        rng = np.random.default_rng(self.seed)
        trees = []
        for _ in range(self.n_trees):
            p = _sigmoid(raw)
            residual = y - p
            tree = DecisionTree(
                criterion="mse",
                max_depth=self.max_depth,
                min_samples_leaf=self.min_samples_leaf,
                max_features=None,
                seed=int(rng.integers(0, 2**31 - 1)),
            )
            tree.fit(x, residual, sample_weight=sample_weight)
            self._newton_refit(tree, x, residual, p, sample_weight)
            raw = raw + self.learning_rate * tree.predict(x)
            trees.append(tree)
        self._trees = trees
        return self

    @staticmethod
    def _newton_refit(
        tree: DecisionTree,
        x: np.ndarray,
        residual: np.ndarray,
        p: np.ndarray,
        sample_weight: np.ndarray,
    ) -> None:
        """Replace leaf means with the Newton step for logistic loss."""
        leaves = tree.apply(x)
        values = tree.leaf_values()
        hessian = np.maximum(p * (1 - p), 1e-6)
        numer = np.bincount(
            leaves, weights=sample_weight * residual, minlength=len(values)
        )
        denom = np.bincount(
            leaves, weights=sample_weight * hessian, minlength=len(values)
        )
        updated = values.copy()
        touched = denom > 0
        updated[touched] = numer[touched] / denom[touched]
        # Clip extreme steps for numerical stability on tiny leaves.
        np.clip(updated, -4.0, 4.0, out=updated)
        tree.set_leaf_values(updated)

    def decision_function(self, x: np.ndarray) -> np.ndarray:
        """Raw additive score before the sigmoid."""
        trees = self._trees_checked()
        x = np.asarray(x, dtype=np.float64)
        raw = np.full(len(x), self._base_score)
        for tree in trees:
            raw += self.learning_rate * tree.predict(x)
        return raw

    def predict_proba(self, x: np.ndarray) -> np.ndarray:
        """Churner probability."""
        return _sigmoid(self.decision_function(x))

    def predict(self, x: np.ndarray, threshold: float = 0.5) -> np.ndarray:
        return (self.predict_proba(x) >= threshold).astype(np.int64)

    def staged_train_loss(
        self, x: np.ndarray, y: np.ndarray
    ) -> np.ndarray:
        """Log-loss after each stage (diagnostic; monotone on train data)."""
        trees = self._trees_checked()
        x = np.asarray(x, dtype=np.float64)
        y = np.asarray(y, dtype=np.float64)
        raw = np.full(len(x), self._base_score)
        losses = []
        for tree in trees:
            raw = raw + self.learning_rate * tree.predict(x)
            p = np.clip(_sigmoid(raw), 1e-12, 1 - 1e-12)
            losses.append(float(-np.mean(y * np.log(p) + (1 - y) * np.log(1 - p))))
        return np.asarray(losses)

    def _trees_checked(self) -> list[DecisionTree]:
        if self._trees is None:
            raise NotFittedError("GBDT has not been fitted")
        return self._trees
