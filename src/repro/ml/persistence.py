"""Model persistence for the monthly retrain cycle.

The deployed system retrains every month and serves the previous model
until the new one is validated; that requires storing models.  Random
forests serialize to npz bytes (the same codec family the platform's tables
use), so a fitted model can live in the block store next to the feature
tables that produced it.
"""

from __future__ import annotations

import io

import numpy as np

from ..errors import ModelError, NotFittedError
from .forest import RandomForestClassifier
from .tree import DecisionTree

#: Format marker stored with every serialized model.
_MAGIC = "repro-rf-v1"


def tree_to_arrays(tree: DecisionTree) -> dict[str, np.ndarray]:
    """Flat-array snapshot of a fitted tree."""
    if tree._value is None:
        raise NotFittedError("cannot serialize an unfitted tree")
    assert tree._feature is not None and tree._threshold is not None
    assert tree._left is not None and tree._right is not None
    assert tree._importances is not None
    return {
        "feature": tree._feature,
        "threshold": tree._threshold,
        "left": tree._left,
        "right": tree._right,
        "value": tree._value,
        "importances": tree._importances,
        "meta": np.asarray(
            [tree.max_depth, tree.min_samples_leaf, tree._n_features],
            dtype=np.int64,
        ),
    }


def tree_from_arrays(arrays: dict[str, np.ndarray]) -> DecisionTree:
    """Rebuild a predict-ready tree from :func:`tree_to_arrays` output."""
    max_depth, min_samples_leaf, n_features = (
        int(v) for v in arrays["meta"]
    )
    tree = DecisionTree(
        criterion="gini",
        max_depth=max_depth,
        min_samples_leaf=min_samples_leaf,
    )
    tree._feature = np.asarray(arrays["feature"], dtype=np.int64)
    tree._threshold = np.asarray(arrays["threshold"], dtype=np.float64)
    tree._left = np.asarray(arrays["left"], dtype=np.int64)
    tree._right = np.asarray(arrays["right"], dtype=np.int64)
    tree._value = np.asarray(arrays["value"], dtype=np.float64)
    tree._importances = np.asarray(arrays["importances"], dtype=np.float64)
    tree._n_features = n_features
    return tree


def forest_to_bytes(forest: RandomForestClassifier) -> bytes:
    """Serialize a fitted forest to npz bytes."""
    trees = forest._trees
    if trees is None:
        raise NotFittedError("cannot serialize an unfitted forest")
    arrays: dict[str, np.ndarray] = {
        "__magic__": np.asarray([_MAGIC], dtype=str),
        "__config__": np.asarray(
            [
                forest.n_trees,
                forest.min_samples_leaf,
                forest.max_depth,
                forest.seed,
                forest._n_features,
            ],
            dtype=np.int64,
        ),
    }
    for i, tree in enumerate(trees):
        for name, arr in tree_to_arrays(tree).items():
            arrays[f"t{i}_{name}"] = arr
    buf = io.BytesIO()
    np.savez(buf, **arrays)
    return buf.getvalue()


def forest_from_bytes(payload: bytes) -> RandomForestClassifier:
    """Inverse of :func:`forest_to_bytes` — a predict-ready forest."""
    with np.load(io.BytesIO(payload), allow_pickle=False) as npz:
        magic = str(npz["__magic__"][0])
        if magic != _MAGIC:
            raise ModelError(f"not a serialized forest (marker {magic!r})")
        n_trees, min_leaf, max_depth, seed, n_features = (
            int(v) for v in npz["__config__"]
        )
        forest = RandomForestClassifier(
            n_trees=n_trees,
            min_samples_leaf=min_leaf,
            max_depth=max_depth,
            seed=seed,
        )
        trees = []
        for i in range(n_trees):
            arrays = {
                name: npz[f"t{i}_{name}"]
                for name in (
                    "feature", "threshold", "left", "right", "value",
                    "importances", "meta",
                )
            }
            trees.append(tree_from_arrays(arrays))
        forest._trees = trees
        forest._n_features = n_features
    return forest


def save_forest(
    forest: RandomForestClassifier,
    catalog,
    name: str,
    database: str = "default",
) -> None:
    """Store a fitted forest in the platform's block store.

    The model lands at ``/models/<database>/<name>.npz`` on the same
    replicated storage as the feature tables.
    """
    catalog.store.write(
        f"/models/{database}/{name}.npz", forest_to_bytes(forest)
    )


def load_forest(
    catalog, name: str, database: str = "default"
) -> RandomForestClassifier:
    """Inverse of :func:`save_forest`."""
    return forest_from_bytes(
        catalog.store.read(f"/models/{database}/{name}.npz")
    )
