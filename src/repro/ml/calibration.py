"""Probability calibration for churn likelihoods.

The retention system budgets campaigns off the churn likelihood (Eq. 4);
bagged-vote scores are well *ranked* but not well *calibrated*, so spending
decisions benefit from mapping scores to true probabilities.  Two classic
calibrators, from scratch:

* :class:`PlattScaler` — fits a one-dimensional logistic map
  ``p = σ(a·s + b)`` on held-out scores;
* :class:`IsotonicCalibrator` — pool-adjacent-violators (PAVA) monotone
  regression, non-parametric.

Diagnostics: :func:`brier_score` and :func:`expected_calibration_error`.
"""

from __future__ import annotations

import numpy as np

from ..errors import ModelError, NotFittedError
from .linear import LogisticRegression


def brier_score(y_true: np.ndarray, probabilities: np.ndarray) -> float:
    """Mean squared error of probabilistic predictions (lower is better)."""
    y_true = np.asarray(y_true, dtype=np.float64)
    probabilities = np.asarray(probabilities, dtype=np.float64)
    if y_true.shape != probabilities.shape:
        raise ModelError(
            f"shape mismatch: {y_true.shape} vs {probabilities.shape}"
        )
    return float(np.mean((probabilities - y_true) ** 2))


def expected_calibration_error(
    y_true: np.ndarray, probabilities: np.ndarray, n_bins: int = 10
) -> float:
    """ECE: bin-weighted |empirical rate − mean predicted probability|."""
    y_true = np.asarray(y_true, dtype=np.float64)
    probabilities = np.asarray(probabilities, dtype=np.float64)
    if n_bins < 1:
        raise ModelError(f"n_bins must be >= 1, got {n_bins}")
    edges = np.linspace(0, 1, n_bins + 1)
    bins = np.clip(np.digitize(probabilities, edges[1:-1]), 0, n_bins - 1)
    total = len(y_true)
    ece = 0.0
    for b in range(n_bins):
        mask = bins == b
        if not mask.any():
            continue
        gap = abs(y_true[mask].mean() - probabilities[mask].mean())
        ece += (mask.sum() / total) * gap
    return float(ece)


class PlattScaler:
    """Logistic recalibration of a 1-D score."""

    def __init__(self, max_iter: int = 300) -> None:
        self._model: LogisticRegression | None = None
        self.max_iter = max_iter

    def fit(self, scores: np.ndarray, y_true: np.ndarray) -> "PlattScaler":
        scores = np.asarray(scores, dtype=np.float64).reshape(-1, 1)
        y_true = np.asarray(y_true, dtype=np.int64)
        model = LogisticRegression(l2=1e-8, max_iter=self.max_iter)
        model.fit(scores, y_true)
        self._model = model
        return self

    def transform(self, scores: np.ndarray) -> np.ndarray:
        if self._model is None:
            raise NotFittedError("PlattScaler.transform called before fit")
        scores = np.asarray(scores, dtype=np.float64).reshape(-1, 1)
        return self._model.predict_proba(scores)

    @property
    def slope(self) -> float:
        if self._model is None:
            raise NotFittedError("PlattScaler has not been fitted")
        return float(self._model.coef_[0])


class IsotonicCalibrator:
    """Monotone non-parametric calibration via pool-adjacent-violators."""

    def __init__(self) -> None:
        self._x: np.ndarray | None = None
        self._y: np.ndarray | None = None

    def fit(self, scores: np.ndarray, y_true: np.ndarray) -> "IsotonicCalibrator":
        scores = np.asarray(scores, dtype=np.float64)
        y_true = np.asarray(y_true, dtype=np.float64)
        if scores.shape != y_true.shape or scores.ndim != 1:
            raise ModelError("scores and labels must be equal-length 1-D arrays")
        if len(scores) == 0:
            raise ModelError("cannot calibrate on an empty sample")
        order = np.argsort(scores, kind="mergesort")
        x = scores[order]
        y = y_true[order]
        # PAVA with block merging: each block holds (value sum, weight).
        values: list[float] = []
        weights: list[float] = []
        starts: list[int] = []
        for i, target in enumerate(y.tolist()):
            values.append(target)
            weights.append(1.0)
            starts.append(i)
            # Merge backwards while monotonicity is violated.
            while len(values) > 1 and values[-2] > values[-1]:
                merged_weight = weights[-2] + weights[-1]
                merged_value = (
                    values[-2] * weights[-2] + values[-1] * weights[-1]
                ) / merged_weight
                values[-2:] = [merged_value]
                weights[-2:] = [merged_weight]
                starts.pop()
        fitted = np.empty(len(y))
        boundaries = starts + [len(y)]
        for value, lo, hi in zip(values, boundaries[:-1], boundaries[1:]):
            fitted[lo:hi] = value
        self._x = x
        self._y = fitted
        return self

    def transform(self, scores: np.ndarray) -> np.ndarray:
        """Step-interpolated calibrated probabilities (clipped to [0, 1])."""
        if self._x is None or self._y is None:
            raise NotFittedError("IsotonicCalibrator.transform called before fit")
        scores = np.asarray(scores, dtype=np.float64)
        out = np.interp(scores, self._x, self._y)
        return np.clip(out, 0.0, 1.0)

    @property
    def fitted_curve(self) -> tuple[np.ndarray, np.ndarray]:
        """(sorted scores, fitted monotone values) — diagnostics."""
        if self._x is None or self._y is None:
            raise NotFittedError("IsotonicCalibrator has not been fitted")
        return self._x.copy(), self._y.copy()
