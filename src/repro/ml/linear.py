"""L2-regularised logistic regression — the LIBLINEAR baseline.

The paper benchmarks LIBLINEAR (L2-regularised LR) on discretized binary
features (Section 5.8).  This implementation minimizes

    L(w) = (1/n) Σ_i s_i · log(1 + exp(-ŷ_i)) + (λ/2) ||w||²

with full-batch gradient descent plus backtracking line search — simple,
deterministic and dependency-free; training loss is guaranteed non-increasing,
which the tests assert.
"""

from __future__ import annotations

import numpy as np

from ..errors import ModelError, NotFittedError


def _sigmoid(z: np.ndarray) -> np.ndarray:
    return 1.0 / (1.0 + np.exp(-np.clip(z, -35, 35)))


class LogisticRegression:
    """Binary LR with L2 penalty and optional instance weights.

    Parameters
    ----------
    l2:
        Regularization strength λ (the intercept is not penalized).
    max_iter:
        Gradient-descent steps.
    tol:
        Stop when the gradient's infinity norm falls below this.
    """

    def __init__(self, l2: float = 1e-3, max_iter: int = 200, tol: float = 1e-6) -> None:
        if l2 < 0:
            raise ModelError(f"l2 must be >= 0, got {l2}")
        if max_iter < 1:
            raise ModelError(f"max_iter must be >= 1, got {max_iter}")
        self.l2 = l2
        self.max_iter = max_iter
        self.tol = tol
        self._weights: np.ndarray | None = None
        self._intercept = 0.0
        self._loss_history: list[float] = []

    def fit(
        self,
        x: np.ndarray,
        y: np.ndarray,
        sample_weight: np.ndarray | None = None,
    ) -> "LogisticRegression":
        x = np.asarray(x, dtype=np.float64)
        y = np.asarray(y, dtype=np.float64)
        if x.ndim != 2:
            raise ModelError(f"x must be 2-D, got {x.ndim}-D")
        if len(x) != len(y):
            raise ModelError(f"x has {len(x)} rows but y has {len(y)}")
        labels = set(np.unique(y).tolist())
        if not labels <= {0.0, 1.0}:
            raise ModelError(f"labels must be 0/1, got {labels}")
        if sample_weight is None:
            sample_weight = np.ones(len(y))
        else:
            sample_weight = np.asarray(sample_weight, dtype=np.float64)
        s = sample_weight / sample_weight.sum()

        w = np.zeros(x.shape[1])
        b = 0.0
        step = 1.0
        self._loss_history = [self._loss(x, y, s, w, b)]
        for _ in range(self.max_iter):
            p = _sigmoid(x @ w + b)
            error = s * (p - y)
            grad_w = x.T @ error + self.l2 * w
            grad_b = float(error.sum())
            grad_norm = max(np.abs(grad_w).max(), abs(grad_b))
            if grad_norm < self.tol:
                break
            # Backtracking line search on the objective.
            current = self._loss_history[-1]
            step = min(step * 2.0, 1e4)
            while step > 1e-12:
                w_try = w - step * grad_w
                b_try = b - step * grad_b
                loss_try = self._loss(x, y, s, w_try, b_try)
                if loss_try <= current:
                    w, b = w_try, b_try
                    self._loss_history.append(loss_try)
                    break
                step *= 0.5
            else:
                break
        self._weights = w
        self._intercept = b
        return self

    def _loss(
        self,
        x: np.ndarray,
        y: np.ndarray,
        s: np.ndarray,
        w: np.ndarray,
        b: float,
    ) -> float:
        z = x @ w + b
        # log(1 + exp(-m)) where m is the margin, numerically stable.
        margin = np.where(y == 1, z, -z)
        nll = np.logaddexp(0.0, -margin)
        return float((s * nll).sum() + 0.5 * self.l2 * (w @ w))

    def predict_proba(self, x: np.ndarray) -> np.ndarray:
        w = self._weights_checked()
        x = np.asarray(x, dtype=np.float64)
        if x.shape[1] != len(w):
            raise ModelError(
                f"x has {x.shape[1]} features, model fitted with {len(w)}"
            )
        return _sigmoid(x @ w + self._intercept)

    def predict(self, x: np.ndarray, threshold: float = 0.5) -> np.ndarray:
        return (self.predict_proba(x) >= threshold).astype(np.int64)

    @property
    def coef_(self) -> np.ndarray:
        return self._weights_checked()

    @property
    def intercept_(self) -> float:
        self._weights_checked()
        return self._intercept

    @property
    def loss_history(self) -> list[float]:
        """Objective value per accepted step (non-increasing)."""
        return list(self._loss_history)

    def _weights_checked(self) -> np.ndarray:
        if self._weights is None:
            raise NotFittedError("LogisticRegression has not been fitted")
        return self._weights
