"""Class-imbalance treatments (Table 7).

Four strategies, exactly as Section 5.7 describes them:

* ``none`` — train on the raw imbalanced data;
* ``up`` — randomly duplicate churners to match the non-churner count;
* ``down`` — randomly subsample non-churners to match the churner count;
* ``weighted`` — keep all instances but weight each class inversely to its
  frequency (the method the paper advocates).
"""

from __future__ import annotations

import numpy as np

from ..errors import ModelError

STRATEGIES = ("none", "up", "down", "weighted")


def rebalance(
    x: np.ndarray,
    y: np.ndarray,
    strategy: str = "weighted",
    rng: np.random.Generator | None = None,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Return ``(x, y, sample_weight)`` rebalanced per ``strategy``."""
    if strategy not in STRATEGIES:
        raise ModelError(
            f"unknown imbalance strategy {strategy!r}; choose from {STRATEGIES}"
        )
    x = np.asarray(x, dtype=np.float64)
    y = np.asarray(y, dtype=np.int64)
    if len(x) != len(y):
        raise ModelError(f"x has {len(x)} rows but y has {len(y)}")
    pos_idx = np.flatnonzero(y == 1)
    neg_idx = np.flatnonzero(y == 0)
    if len(pos_idx) == 0 or len(neg_idx) == 0:
        raise ModelError("rebalance requires both classes present")
    if rng is None:
        rng = np.random.default_rng(0)

    if strategy == "none":
        return x, y, np.ones(len(y))
    if strategy == "weighted":
        # Proportional weights: each class contributes equal total weight.
        weights = np.where(
            y == 1, len(y) / (2 * len(pos_idx)), len(y) / (2 * len(neg_idx))
        )
        return x, y, weights
    minority, majority = pos_idx, neg_idx
    if len(pos_idx) > len(neg_idx):
        minority, majority = neg_idx, pos_idx
    if strategy == "up":
        extra = rng.choice(minority, size=len(majority) - len(minority), replace=True)
        keep = np.concatenate([np.arange(len(y)), extra])
    else:  # down
        sampled = rng.choice(majority, size=len(minority), replace=False)
        keep = np.concatenate([minority, sampled])
    rng.shuffle(keep)
    return x[keep], y[keep], np.ones(len(keep))
