"""Factorization machines (Eq. 3) — the LIBFM analogue.

Two roles in the paper:

1. a classifier baseline on binarized features (Section 5.8), and
2. the second-order feature selector of Section 4.1.4 — after training, the
   learned pairwise weight ``<v_i, v_j>`` ranks candidate feature products
   and the top 20 become the F9 features.

The model is ``ŷ = w0 + Σ w_i x_i + Σ_{i<j} <v_i, v_j> x_i x_j`` trained by
SGD with the O(k·nnz) reformulation
``Σ_{i<j} <v_i,v_j> x_i x_j = ½ Σ_f [(Σ_i v_if x_i)² − Σ_i v_if² x_i²]``.
"""

from __future__ import annotations

import numpy as np

from ..config import PAPER
from ..errors import ModelError, NotFittedError


def _sigmoid(z: np.ndarray) -> np.ndarray:
    return 1.0 / (1.0 + np.exp(-np.clip(z, -35, 35)))


class FactorizationMachine:
    """Second-order FM for binary classification.

    Parameters
    ----------
    n_factors:
        Latent dimension k of each ``v_i``.
    learning_rate:
        SGD step size (paper fixes 0.1).
    n_epochs:
        Full passes over the training data.
    l2:
        L2 penalty on ``w`` and ``V``.
    seed:
        Initialization / shuffling seed.
    """

    def __init__(
        self,
        n_factors: int = 8,
        learning_rate: float = PAPER.learning_rate,
        n_epochs: int = 10,
        l2: float = 1e-4,
        init_scale: float = 0.01,
        seed: int = 0,
    ) -> None:
        if n_factors < 1:
            raise ModelError(f"n_factors must be >= 1, got {n_factors}")
        if n_epochs < 1:
            raise ModelError(f"n_epochs must be >= 1, got {n_epochs}")
        if not 0 < learning_rate <= 1:
            raise ModelError(f"learning_rate must be in (0, 1], got {learning_rate}")
        self.n_factors = n_factors
        self.learning_rate = learning_rate
        self.n_epochs = n_epochs
        self.l2 = l2
        self.init_scale = init_scale
        self.seed = seed
        self._w0 = 0.0
        self._w: np.ndarray | None = None
        self._v: np.ndarray | None = None

    def fit(
        self,
        x: np.ndarray,
        y: np.ndarray,
        sample_weight: np.ndarray | None = None,
    ) -> "FactorizationMachine":
        x = np.asarray(x, dtype=np.float64)
        y = np.asarray(y, dtype=np.float64)
        if x.ndim != 2:
            raise ModelError(f"x must be 2-D, got {x.ndim}-D")
        if len(x) != len(y):
            raise ModelError(f"x has {len(x)} rows but y has {len(y)}")
        labels = set(np.unique(y).tolist())
        if not labels <= {0.0, 1.0}:
            raise ModelError(f"labels must be 0/1, got {labels}")
        n, d = x.shape
        if sample_weight is None:
            sample_weight = np.ones(n)
        else:
            sample_weight = np.asarray(sample_weight, dtype=np.float64)
        rng = np.random.default_rng(self.seed)
        w0 = 0.0
        w = np.zeros(d)
        v = rng.normal(0.0, self.init_scale, size=(d, self.n_factors))

        lr = self.learning_rate
        batch = max(32, n // 64)
        for _ in range(self.n_epochs):
            order = rng.permutation(n)
            for start in range(0, n, batch):
                rows = order[start : start + batch]
                xb = x[rows]
                yb = y[rows]
                sb = sample_weight[rows]
                xv = xb @ v  # (b, k)
                x2v2 = (xb * xb) @ (v * v)  # (b, k)
                raw = w0 + xb @ w + 0.5 * (xv * xv - x2v2).sum(axis=1)
                p = _sigmoid(raw)
                g = sb * (p - yb) / len(rows)  # (b,)
                w0 -= lr * float(g.sum())
                w -= lr * (xb.T @ g + self.l2 * w)
                # dV_if = x_i * (xv_f) - v_if * x_i^2, batched:
                grad_v = xb.T @ (g[:, None] * xv) - v * (
                    (xb * xb).T @ g
                )[:, None]
                v -= lr * (grad_v + self.l2 * v)
        self._w0 = w0
        self._w = w
        self._v = v
        return self

    def decision_function(self, x: np.ndarray) -> np.ndarray:
        w, v = self._params_checked()
        x = np.asarray(x, dtype=np.float64)
        if x.shape[1] != len(w):
            raise ModelError(
                f"x has {x.shape[1]} features, model fitted with {len(w)}"
            )
        xv = x @ v
        x2v2 = (x * x) @ (v * v)
        return self._w0 + x @ w + 0.5 * (xv * xv - x2v2).sum(axis=1)

    def predict_proba(self, x: np.ndarray) -> np.ndarray:
        return _sigmoid(self.decision_function(x))

    def predict(self, x: np.ndarray, threshold: float = 0.5) -> np.ndarray:
        return (self.predict_proba(x) >= threshold).astype(np.int64)

    def pair_weight(self, i: int, j: int) -> float:
        """The learned second-order weight ``<v_i, v_j>`` for features i, j."""
        _, v = self._params_checked()
        if not (0 <= i < len(v) and 0 <= j < len(v)):
            raise ModelError(f"feature index out of range: ({i}, {j})")
        return float(v[i] @ v[j])

    def top_pairs(self, n_pairs: int) -> list[tuple[int, int, float]]:
        """The ``n_pairs`` feature pairs with the largest |<v_i, v_j>|.

        This is the paper's second-order feature selection (Section 4.1.4):
        rank all (N+1)N/2 pair weights and keep the strongest interactions.
        """
        _, v = self._params_checked()
        gram = v @ v.T
        d = len(v)
        iu = np.triu_indices(d, k=1)
        weights = gram[iu]
        order = np.argsort(-np.abs(weights))[:n_pairs]
        return [
            (int(iu[0][k]), int(iu[1][k]), float(weights[k])) for k in order
        ]

    def _params_checked(self) -> tuple[np.ndarray, np.ndarray]:
        if self._w is None or self._v is None:
            raise NotFittedError("FactorizationMachine has not been fitted")
        return self._w, self._v
