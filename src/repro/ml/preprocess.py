"""Feature preprocessing.

The paper feeds raw continuous features to the tree models but binarizes them
for LIBFM / LIBLINEAR ("linear models are more suitable for sparse binary
features", Section 5.8).  :class:`QuantileBinner` + :func:`one_hot` reproduce
that; :class:`Standardizer` supports the FM-based second-order selection.
"""

from __future__ import annotations

import numpy as np

from ..errors import ModelError, NotFittedError


class Standardizer:
    """Column-wise z-scoring with constant-column safety."""

    def __init__(self) -> None:
        self._mean: np.ndarray | None = None
        self._std: np.ndarray | None = None

    def fit(self, x: np.ndarray) -> "Standardizer":
        x = _as_matrix(x)
        self._mean = x.mean(axis=0)
        std = x.std(axis=0)
        # Treat numerically-constant columns (std at float-epsilon level
        # relative to the magnitude) as constant: dividing by a ULP-sized
        # std would amplify cancellation noise into garbage z-scores.
        constant = std <= 1e-12 * (np.abs(self._mean) + 1.0)
        std[constant] = 1.0
        self._std = std
        return self

    def transform(self, x: np.ndarray) -> np.ndarray:
        if self._mean is None or self._std is None:
            raise NotFittedError("Standardizer.transform called before fit")
        x = _as_matrix(x)
        if x.shape[1] != len(self._mean):
            raise ModelError(
                f"feature count {x.shape[1]} != fitted {len(self._mean)}"
            )
        return (x - self._mean) / self._std

    def fit_transform(self, x: np.ndarray) -> np.ndarray:
        return self.fit(x).transform(x)


class QuantileBinner:
    """Equal-frequency binning of continuous columns into integer codes."""

    def __init__(self, n_bins: int = 8) -> None:
        if n_bins < 2:
            raise ModelError(f"n_bins must be >= 2, got {n_bins}")
        self._n_bins = n_bins
        self._edges: list[np.ndarray] | None = None

    @property
    def n_bins(self) -> int:
        return self._n_bins

    def fit(self, x: np.ndarray) -> "QuantileBinner":
        x = _as_matrix(x)
        quantiles = np.linspace(0, 1, self._n_bins + 1)[1:-1]
        self._edges = [
            np.unique(np.quantile(x[:, j], quantiles)) for j in range(x.shape[1])
        ]
        return self

    def transform(self, x: np.ndarray) -> np.ndarray:
        """Integer bin codes in ``[0, n_bins)`` per column."""
        if self._edges is None:
            raise NotFittedError("QuantileBinner.transform called before fit")
        x = _as_matrix(x)
        if x.shape[1] != len(self._edges):
            raise ModelError(
                f"feature count {x.shape[1]} != fitted {len(self._edges)}"
            )
        out = np.empty(x.shape, dtype=np.int64)
        for j, edges in enumerate(self._edges):
            out[:, j] = np.searchsorted(edges, x[:, j], side="right")
        return out

    def fit_transform(self, x: np.ndarray) -> np.ndarray:
        return self.fit(x).transform(x)

    def bin_counts(self) -> list[int]:
        """Number of distinct bins actually realized per column."""
        if self._edges is None:
            raise NotFittedError("QuantileBinner.bin_counts called before fit")
        return [len(edges) + 1 for edges in self._edges]


def one_hot(codes: np.ndarray, counts: list[int] | None = None) -> np.ndarray:
    """Expand integer bin codes into a dense 0/1 design matrix.

    ``counts[j]`` gives the number of categories of column ``j``; inferred
    from the data when omitted (then transform-time codes must not exceed
    fit-time ones — pass counts from :meth:`QuantileBinner.bin_counts`).
    """
    codes = np.asarray(codes, dtype=np.int64)
    if codes.ndim != 2:
        raise ModelError(f"expected a 2-D code matrix, got {codes.ndim}-D")
    if counts is None:
        counts = [int(codes[:, j].max()) + 1 if len(codes) else 1
                  for j in range(codes.shape[1])]
    if len(counts) != codes.shape[1]:
        raise ModelError(
            f"counts has {len(counts)} entries for {codes.shape[1]} columns"
        )
    offsets = np.concatenate([[0], np.cumsum(counts)])
    total = int(offsets[-1])
    out = np.zeros((codes.shape[0], total), dtype=np.float64)
    for j, width in enumerate(counts):
        clipped = np.clip(codes[:, j], 0, width - 1)
        out[np.arange(codes.shape[0]), offsets[j] + clipped] = 1.0
    return out


def binarize_for_linear(
    x_train: np.ndarray, x_test: np.ndarray, n_bins: int = 8
) -> tuple[np.ndarray, np.ndarray]:
    """The paper's preprocessing for LIBFM / LIBLINEAR in one call."""
    binner = QuantileBinner(n_bins=n_bins).fit(x_train)
    counts = binner.bin_counts()
    return (
        one_hot(binner.transform(x_train), counts),
        one_hot(binner.transform(x_test), counts),
    )


def _as_matrix(x: np.ndarray) -> np.ndarray:
    x = np.asarray(x, dtype=np.float64)
    if x.ndim != 2:
        raise ModelError(f"expected a 2-D feature matrix, got {x.ndim}-D")
    return x
