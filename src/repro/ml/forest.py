"""Random Forest (Section 4.2).

Bagging over CART trees with √N feature subspaces; the churner likelihood of
a test instance is the average of tree outputs (Eq. 4), and per-feature
importance sums Gini improvements over all trees (Eq. 7).  The deployed
system uses 500 trees with a 100-instance leaf floor; those are the defaults
of :meth:`RandomForestClassifier.paper_settings`.
"""

from __future__ import annotations

import numpy as np

from ..config import PAPER
from ..errors import ModelError, NotFittedError
from .tree import DecisionTree


class RandomForestClassifier:
    """Bagged ensemble of Gini CART trees for churn scoring.

    Parameters
    ----------
    n_trees:
        Ensemble size (T in Eq. 4).
    min_samples_leaf:
        Per-tree leaf floor (the paper's over-fitting guard).
    max_depth:
        Per-tree depth cap.
    max_features:
        Per-node feature subsample; the paper uses ``"sqrt"``.
    seed:
        Master seed; each tree derives its own bootstrap and subspace RNG.
    """

    def __init__(
        self,
        n_trees: int = 100,
        min_samples_leaf: int = 10,
        max_depth: int = 25,
        max_features: str | int | None = "sqrt",
        seed: int = 0,
    ) -> None:
        if n_trees < 1:
            raise ModelError(f"n_trees must be >= 1, got {n_trees}")
        self.n_trees = n_trees
        self.min_samples_leaf = min_samples_leaf
        self.max_depth = max_depth
        self.max_features = max_features
        self.seed = seed
        self._trees: list[DecisionTree] | None = None
        self._n_features = 0

    @classmethod
    def paper_settings(cls, seed: int = 0) -> "RandomForestClassifier":
        """The deployed configuration: 500 trees, 100-instance leaves."""
        return cls(
            n_trees=PAPER.rf_trees,
            min_samples_leaf=PAPER.rf_min_leaf,
            seed=seed,
        )

    def fit(
        self,
        x: np.ndarray,
        y: np.ndarray,
        sample_weight: np.ndarray | None = None,
    ) -> "RandomForestClassifier":
        x = np.asarray(x, dtype=np.float64)
        y = np.asarray(y, dtype=np.float64)
        if len(x) != len(y):
            raise ModelError(f"x has {len(x)} rows but y has {len(y)}")
        if sample_weight is not None:
            sample_weight = np.asarray(sample_weight, dtype=np.float64)
        rng = np.random.default_rng(self.seed)
        n = len(y)
        trees = []
        for t in range(self.n_trees):
            boot = rng.integers(0, n, size=n)
            tree = DecisionTree(
                criterion="gini",
                max_depth=self.max_depth,
                min_samples_leaf=self.min_samples_leaf,
                max_features=self.max_features,
                seed=int(rng.integers(0, 2**31 - 1)),
            )
            weights = None if sample_weight is None else sample_weight[boot]
            tree.fit(x[boot], y[boot], sample_weight=weights)
            trees.append(tree)
        self._trees = trees
        self._n_features = x.shape[1]
        return self

    def predict_proba(self, x: np.ndarray) -> np.ndarray:
        """Churner likelihood: the average of tree outputs (Eq. 4)."""
        trees = self._trees_checked()
        x = np.asarray(x, dtype=np.float64)
        out = np.zeros(len(x))
        for tree in trees:
            out += tree.predict(x)
        return out / len(trees)

    def predict(self, x: np.ndarray, threshold: float = 0.5) -> np.ndarray:
        """Hard 0/1 labels at a likelihood threshold."""
        return (self.predict_proba(x) >= threshold).astype(np.int64)

    def rank(self, x: np.ndarray) -> np.ndarray:
        """Row indices sorted by descending churn likelihood.

        This is the paper's output artifact: the top of this list is the
        monthly potential-churner list sent to retention campaigns.
        """
        return np.argsort(-self.predict_proba(x), kind="mergesort")

    @property
    def feature_importances_(self) -> np.ndarray:
        """Eq. 7 summed over trees, normalized to sum to 1."""
        trees = self._trees_checked()
        total = np.zeros(self._n_features)
        for tree in trees:
            total += tree.feature_importances_
        s = total.sum()
        return total / s if s > 0 else total

    def _trees_checked(self) -> list[DecisionTree]:
        if self._trees is None:
            raise NotFittedError("forest has not been fitted")
        return self._trees


class OneVsRestForest:
    """Multi-class RF via one-vs-rest binary forests.

    The retention matcher (Section 4.3) classifies potential churners into
    C offer categories; this wraps one :class:`RandomForestClassifier` per
    class and predicts the argmax of the per-class churn-style likelihoods.
    """

    def __init__(
        self,
        n_classes: int,
        n_trees: int = 50,
        min_samples_leaf: int = 10,
        max_depth: int = 25,
        seed: int = 0,
    ) -> None:
        if n_classes < 2:
            raise ModelError(f"n_classes must be >= 2, got {n_classes}")
        self.n_classes = n_classes
        self.n_trees = n_trees
        self.min_samples_leaf = min_samples_leaf
        self.max_depth = max_depth
        self.seed = seed
        self._forests: list[RandomForestClassifier] | None = None

    def fit(self, x: np.ndarray, y: np.ndarray) -> "OneVsRestForest":
        x = np.asarray(x, dtype=np.float64)
        y = np.asarray(y, dtype=np.int64)
        if len(x) != len(y):
            raise ModelError(f"x has {len(x)} rows but y has {len(y)}")
        if y.min() < 0 or y.max() >= self.n_classes:
            raise ModelError(
                f"labels must be in 0..{self.n_classes - 1}, "
                f"got range [{y.min()}, {y.max()}]"
            )
        forests = []
        for c in range(self.n_classes):
            target = (y == c).astype(np.float64)
            forest = RandomForestClassifier(
                n_trees=self.n_trees,
                min_samples_leaf=self.min_samples_leaf,
                max_depth=self.max_depth,
                seed=self.seed + 1000 * c,
            )
            if target.min() == target.max():
                # Degenerate class (absent or universal): constant score.
                forests.append(_ConstantScorer(float(target[0])))
            else:
                forests.append(forest.fit(x, target))
        self._forests = forests
        return self

    def predict_proba(self, x: np.ndarray) -> np.ndarray:
        """(n, C) per-class scores, row-normalized."""
        if self._forests is None:
            raise NotFittedError("OneVsRestForest has not been fitted")
        scores = np.column_stack(
            [f.predict_proba(x) for f in self._forests]
        )
        totals = scores.sum(axis=1, keepdims=True)
        return scores / np.maximum(totals, 1e-12)

    def predict(self, x: np.ndarray) -> np.ndarray:
        """Most likely class per row."""
        return self.predict_proba(x).argmax(axis=1)


class _ConstantScorer:
    """Stand-in forest for a class absent from the training data."""

    def __init__(self, value: float) -> None:
        self._value = value

    def predict_proba(self, x: np.ndarray) -> np.ndarray:
        return np.full(len(x), self._value)
