"""Random Forest (Section 4.2).

Bagging over CART trees with √N feature subspaces; the churner likelihood of
a test instance is the average of tree outputs (Eq. 4), and per-feature
importance sums Gini improvements over all trees (Eq. 7).  The deployed
system uses 500 trees with a 100-instance leaf floor; those are the defaults
of :meth:`RandomForestClassifier.paper_settings`.

Training and prediction fan out per-tree work through an
:class:`~repro.dataplat.executor.ExecutorBackend`.  Results are
**bit-identical** across backends: every tree's bootstrap indices and
subspace seed are pre-drawn from the master RNG in tree order before any
task is submitted, trees are fitted independently, and prediction sums tree
outputs in tree order regardless of which worker produced them.
"""

from __future__ import annotations

import numpy as np

from ..config import PAPER
from ..dataplat.executor import ExecutorBackend, resolve_backend
from ..errors import ModelError, NotFittedError
from .tree import DecisionTree


class RandomForestClassifier:
    """Bagged ensemble of Gini CART trees for churn scoring.

    Parameters
    ----------
    n_trees:
        Ensemble size (T in Eq. 4).
    min_samples_leaf:
        Per-tree leaf floor (the paper's over-fitting guard).
    max_depth:
        Per-tree depth cap.
    max_features:
        Per-node feature subsample; the paper uses ``"sqrt"``.
    seed:
        Master seed; each tree derives its own bootstrap and subspace RNG.
    backend:
        Execution backend for per-tree fit/predict tasks (any spec accepted
        by :func:`~repro.dataplat.executor.resolve_backend`); ``None`` uses
        the process-wide default.  Not part of the model state: it is
        dropped on pickling, so a fitted forest travels to worker processes
        without dragging a pool along.
    """

    def __init__(
        self,
        n_trees: int = 100,
        min_samples_leaf: int = 10,
        max_depth: int = 25,
        max_features: str | int | None = "sqrt",
        seed: int = 0,
        backend: "ExecutorBackend | str | None" = None,
    ) -> None:
        if n_trees < 1:
            raise ModelError(f"n_trees must be >= 1, got {n_trees}")
        self.n_trees = n_trees
        self.min_samples_leaf = min_samples_leaf
        self.max_depth = max_depth
        self.max_features = max_features
        self.seed = seed
        self._backend = backend
        self._trees: list[DecisionTree] | None = None
        self._n_features = 0

    def __getstate__(self) -> dict:
        state = dict(self.__dict__)
        state["_backend"] = None  # backends own OS resources; never pickle
        return state

    @classmethod
    def paper_settings(cls, seed: int = 0) -> "RandomForestClassifier":
        """The deployed configuration: 500 trees, 100-instance leaves."""
        return cls(
            n_trees=PAPER.rf_trees,
            min_samples_leaf=PAPER.rf_min_leaf,
            seed=seed,
        )

    def fit(
        self,
        x: np.ndarray,
        y: np.ndarray,
        sample_weight: np.ndarray | None = None,
        backend: "ExecutorBackend | str | None" = None,
    ) -> "RandomForestClassifier":
        x = np.asarray(x, dtype=np.float64)
        y = np.asarray(y, dtype=np.float64)
        if len(x) != len(y):
            raise ModelError(f"x has {len(x)} rows but y has {len(y)}")
        if sample_weight is not None:
            sample_weight = np.asarray(sample_weight, dtype=np.float64)
        rng = np.random.default_rng(self.seed)
        n = len(y)
        # Pre-draw every tree's bootstrap and subspace seed in tree order
        # BEFORE dispatch: tree t's randomness never depends on the backend
        # or on scheduling, so parallel fits are bit-identical to serial.
        draws = []
        for t in range(self.n_trees):
            boot = rng.integers(0, n, size=n)
            draws.append((boot, int(rng.integers(0, 2**31 - 1))))
        params = {
            "max_depth": self.max_depth,
            "min_samples_leaf": self.min_samples_leaf,
            "max_features": self.max_features,
        }
        resolved = resolve_backend(backend if backend is not None else self._backend)
        chunks = _chunk_indices(self.n_trees, resolved.parallelism)
        tasks = [
            (params, x, y, sample_weight, [draws[t] for t in chunk])
            for chunk in chunks
        ]
        results = resolved.map(_fit_tree_chunk, tasks)
        self._trees = [tree for chunk_trees in results for tree in chunk_trees]
        self._n_features = x.shape[1]
        return self

    def predict_proba(
        self,
        x: np.ndarray,
        backend: "ExecutorBackend | str | None" = None,
    ) -> np.ndarray:
        """Churner likelihood: the average of tree outputs (Eq. 4).

        The input is cast to float64 once (trees skip their per-call cast
        via :meth:`DecisionTree.predict`'s ``apply`` on the shared array)
        and tree outputs are accumulated in tree order whatever backend
        computed them, keeping the floating-point sum bit-identical across
        serial and parallel runs.
        """
        trees = self._trees_checked()
        x = np.asarray(x, dtype=np.float64)
        resolved = resolve_backend(backend if backend is not None else self._backend)
        chunks = _chunk_indices(len(trees), resolved.parallelism)
        tasks = [([trees[t] for t in chunk], x) for chunk in chunks]
        results = resolved.map(_predict_tree_chunk, tasks)
        out = np.zeros(len(x))
        for stacked in results:
            for row in stacked:
                out += row
        return out / len(trees)

    def predict(self, x: np.ndarray, threshold: float = 0.5) -> np.ndarray:
        """Hard 0/1 labels at a likelihood threshold."""
        return (self.predict_proba(x) >= threshold).astype(np.int64)

    def rank(self, x: np.ndarray) -> np.ndarray:
        """Row indices sorted by descending churn likelihood.

        This is the paper's output artifact: the top of this list is the
        monthly potential-churner list sent to retention campaigns.  Ties
        are broken by a *stable* mergesort, so equal-likelihood customers
        keep their input order — rankings are reproducible across runs and
        backends:

        >>> x, y = np.zeros((4, 2)), np.zeros(4)
        >>> rf = RandomForestClassifier(n_trees=3, seed=0).fit(x, y)
        >>> rf.rank(x)  # every score ties, so rows keep input order
        array([0, 1, 2, 3])
        """
        return np.argsort(-self.predict_proba(x), kind="mergesort")

    @property
    def feature_importances_(self) -> np.ndarray:
        """Eq. 7 summed over trees, normalized to sum to 1."""
        trees = self._trees_checked()
        total = np.zeros(self._n_features)
        for tree in trees:
            total += tree.feature_importances_
        s = total.sum()
        return total / s if s > 0 else total

    def _trees_checked(self) -> list[DecisionTree]:
        if self._trees is None:
            raise NotFittedError("forest has not been fitted")
        return self._trees


def _chunk_indices(n_items: int, parallelism: int) -> list[list[int]]:
    """Contiguous task chunks: one per worker slot (amortizes shipping x)."""
    n_chunks = max(1, min(n_items, parallelism))
    return [list(chunk) for chunk in np.array_split(np.arange(n_items), n_chunks)]


def _fit_tree_chunk(args):
    """Fit a chunk of trees from pre-drawn (bootstrap, seed) pairs.

    Top-level by design: process backends pickle tasks by name.  Each tree
    is fully determined by its draw, so chunking is free to follow the
    backend's parallelism without affecting results.
    """
    params, x, y, sample_weight, draws = args
    trees = []
    for boot, seed in draws:
        tree = DecisionTree(criterion="gini", seed=seed, **params)
        weights = None if sample_weight is None else sample_weight[boot]
        tree.fit(x[boot], y[boot], sample_weight=weights)
        trees.append(tree)
    return trees


def _predict_tree_chunk(args):
    """Per-tree predictions of a chunk, stacked in tree order."""
    trees, x = args
    return np.stack([tree.predict(x) for tree in trees])


def _fit_class_forest(args):
    """Fit one one-vs-rest member forest (top-level for picklability)."""
    forest, x, target = args
    return forest.fit(x, target)


class OneVsRestForest:
    """Multi-class RF via one-vs-rest binary forests.

    The retention matcher (Section 4.3) classifies potential churners into
    C offer categories; this wraps one :class:`RandomForestClassifier` per
    class and predicts the argmax of the per-class churn-style likelihoods.
    """

    def __init__(
        self,
        n_classes: int,
        n_trees: int = 50,
        min_samples_leaf: int = 10,
        max_depth: int = 25,
        seed: int = 0,
    ) -> None:
        if n_classes < 2:
            raise ModelError(f"n_classes must be >= 2, got {n_classes}")
        self.n_classes = n_classes
        self.n_trees = n_trees
        self.min_samples_leaf = min_samples_leaf
        self.max_depth = max_depth
        self.seed = seed
        self._forests: list[RandomForestClassifier] | None = None

    def fit(
        self,
        x: np.ndarray,
        y: np.ndarray,
        backend: "ExecutorBackend | str | None" = None,
    ) -> "OneVsRestForest":
        x = np.asarray(x, dtype=np.float64)
        y = np.asarray(y, dtype=np.int64)
        if len(x) != len(y):
            raise ModelError(f"x has {len(x)} rows but y has {len(y)}")
        if y.min() < 0 or y.max() >= self.n_classes:
            raise ModelError(
                f"labels must be in 0..{self.n_classes - 1}, "
                f"got range [{y.min()}, {y.max()}]"
            )
        resolved = resolve_backend(backend)
        # Per-class fits are independent (seeds fixed per class), so they
        # fan out whole; degenerate classes short-circuit in the parent.
        tasks = []
        slots: list[tuple[int, "_ConstantScorer | None"]] = []
        for c in range(self.n_classes):
            target = (y == c).astype(np.float64)
            if target.min() == target.max():
                # Degenerate class (absent or universal): constant score.
                slots.append((c, _ConstantScorer(float(target[0]))))
                continue
            forest = RandomForestClassifier(
                n_trees=self.n_trees,
                min_samples_leaf=self.min_samples_leaf,
                max_depth=self.max_depth,
                seed=self.seed + 1000 * c,
            )
            slots.append((c, None))
            tasks.append((forest, x, target))
        fitted = iter(resolved.map(_fit_class_forest, tasks))
        self._forests = [
            scorer if scorer is not None else next(fitted) for _, scorer in slots
        ]
        return self

    def predict_proba(self, x: np.ndarray) -> np.ndarray:
        """(n, C) per-class scores, row-normalized."""
        if self._forests is None:
            raise NotFittedError("OneVsRestForest has not been fitted")
        scores = np.column_stack(
            [f.predict_proba(x) for f in self._forests]
        )
        totals = scores.sum(axis=1, keepdims=True)
        return scores / np.maximum(totals, 1e-12)

    def predict(self, x: np.ndarray) -> np.ndarray:
        """Most likely class per row."""
        return self.predict_proba(x).argmax(axis=1)


class _ConstantScorer:
    """Stand-in forest for a class absent from the training data."""

    def __init__(self, value: float) -> None:
        self._value = value

    def predict_proba(self, x: np.ndarray) -> np.ndarray:
        return np.full(len(x), self._value)
