"""Evaluation metrics of Section 5.1.

The paper evaluates ranked churner lists with four metrics: recall@U (Eq. 8),
precision@U (Eq. 9), the rank-statistic AUC (Eq. 10) and PR-AUC, preferred
for the heavy churner/non-churner imbalance.  ``pr_auc`` here is average
precision, the step-wise integral of the precision-recall curve.
"""

from __future__ import annotations

import numpy as np

from ..errors import ModelError


def _validate(y_true: np.ndarray, y_score: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    y_true = np.asarray(y_true)
    y_score = np.asarray(y_score, dtype=np.float64)
    if y_true.shape != y_score.shape:
        raise ModelError(
            f"shape mismatch: y_true {y_true.shape} vs y_score {y_score.shape}"
        )
    if y_true.ndim != 1:
        raise ModelError(f"expected 1-D arrays, got {y_true.ndim}-D")
    labels = set(np.unique(y_true).tolist())
    if not labels <= {0, 1, False, True}:
        raise ModelError(f"labels must be binary 0/1, got {sorted(labels)}")
    return y_true.astype(np.int64), y_score


def roc_auc(y_true: np.ndarray, y_score: np.ndarray) -> float:
    """Area under the ROC curve via the rank formula (paper Eq. 10).

    ``AUC = (sum of positive ranks - P(P+1)/2) / (P * N)`` with average ranks
    for ties, equivalent to the Mann-Whitney U statistic.
    """
    y_true, y_score = _validate(y_true, y_score)
    pos = int(y_true.sum())
    neg = len(y_true) - pos
    if pos == 0 or neg == 0:
        raise ModelError("roc_auc requires both classes present")
    order = np.argsort(y_score, kind="mergesort")
    ranks = np.empty(len(y_score), dtype=np.float64)
    ranks[order] = np.arange(1, len(y_score) + 1)
    # Average ranks over tied scores so the statistic is permutation-invariant.
    sorted_scores = y_score[order]
    i = 0
    while i < len(sorted_scores):
        j = i
        while j + 1 < len(sorted_scores) and sorted_scores[j + 1] == sorted_scores[i]:
            j += 1
        if j > i:
            avg = 0.5 * (i + j) + 1
            ranks[order[i : j + 1]] = avg
        i = j + 1
    pos_rank_sum = ranks[y_true == 1].sum()
    return float((pos_rank_sum - pos * (pos + 1) / 2) / (pos * neg))


def precision_recall_curve(
    y_true: np.ndarray, y_score: np.ndarray
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """(precision, recall, thresholds), descending thresholds.

    One point per distinct score; precision[i] and recall[i] describe the
    list "everything scored >= thresholds[i]".
    """
    y_true, y_score = _validate(y_true, y_score)
    pos = int(y_true.sum())
    if pos == 0:
        raise ModelError("precision_recall_curve requires positive instances")
    order = np.argsort(-y_score, kind="mergesort")
    sorted_true = y_true[order]
    sorted_scores = y_score[order]
    tp = np.cumsum(sorted_true)
    counts = np.arange(1, len(y_true) + 1)
    # Keep only the last index of each tied-score block.
    distinct = np.flatnonzero(np.diff(sorted_scores, append=np.nan) != 0)
    precision = tp[distinct] / counts[distinct]
    recall = tp[distinct] / pos
    return precision, recall, sorted_scores[distinct]


def average_precision(y_true: np.ndarray, y_score: np.ndarray) -> float:
    """Average precision: the step-function area under the PR curve."""
    precision, recall, _ = precision_recall_curve(y_true, y_score)
    recall_prev = np.concatenate([[0.0], recall[:-1]])
    return float(np.sum((recall - recall_prev) * precision))


def pr_auc(y_true: np.ndarray, y_score: np.ndarray) -> float:
    """Alias for :func:`average_precision` (the paper's PR-AUC)."""
    return average_precision(y_true, y_score)


def _top_u(y_true: np.ndarray, y_score: np.ndarray, u: int) -> np.ndarray:
    y_true, y_score = _validate(y_true, y_score)
    if u < 1:
        raise ModelError(f"U must be >= 1, got {u}")
    u = min(u, len(y_true))
    top = np.argsort(-y_score, kind="mergesort")[:u]
    return y_true[top]


def recall_at(y_true: np.ndarray, y_score: np.ndarray, u: int) -> float:
    """R@U (Eq. 8): true churners in the top U over all true churners."""
    y_true_arr, _ = _validate(y_true, y_score)
    pos = int(y_true_arr.sum())
    if pos == 0:
        raise ModelError("recall_at requires positive instances")
    return float(_top_u(y_true, y_score, u).sum() / pos)


def precision_at(y_true: np.ndarray, y_score: np.ndarray, u: int) -> float:
    """P@U (Eq. 9): true churners in the top U over U."""
    top = _top_u(y_true, y_score, u)
    return float(top.sum() / len(top))


def ranking_report(
    y_true: np.ndarray, y_score: np.ndarray, u_values: tuple[int, ...]
) -> dict:
    """All four paper metrics at once (one AUC/PR-AUC, per-U recall/precision)."""
    return {
        "auc": roc_auc(y_true, y_score),
        "pr_auc": pr_auc(y_true, y_score),
        "recall_at": {u: recall_at(y_true, y_score, u) for u in u_values},
        "precision_at": {u: precision_at(y_true, y_score, u) for u in u_values},
    }
