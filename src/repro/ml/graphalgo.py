"""Graph feature algorithms of Section 4.1.2.

Both operate on weighted undirected graphs over customers, given as an edge
list.  :func:`pagerank` implements the paper's Eq. 1 — weighted PageRank with
damping 0.85, initial value 1 — and :func:`label_propagation` the 3-step
iteration of Zhu & Ghahramani used to spread churner labels.

Sparse matrices (scipy) keep both linear in the number of edges.
"""

from __future__ import annotations

import numpy as np
from scipy import sparse

from ..errors import ModelError


def _adjacency(
    edges: np.ndarray, weights: np.ndarray, n_nodes: int
) -> sparse.csr_matrix:
    """Symmetric weighted adjacency from an undirected edge list."""
    edges = np.asarray(edges, dtype=np.int64)
    weights = np.asarray(weights, dtype=np.float64)
    if edges.ndim != 2 or edges.shape[1] != 2:
        raise ModelError(f"edges must be (m, 2), got {edges.shape}")
    if len(weights) != len(edges):
        raise ModelError(
            f"{len(edges)} edges but {len(weights)} weights"
        )
    if len(edges) and (edges.min() < 0 or edges.max() >= n_nodes):
        raise ModelError("edge endpoint out of range")
    if np.any(weights < 0):
        raise ModelError("edge weights must be non-negative")
    rows = np.concatenate([edges[:, 0], edges[:, 1]])
    cols = np.concatenate([edges[:, 1], edges[:, 0]])
    vals = np.concatenate([weights, weights])
    return sparse.csr_matrix((vals, (rows, cols)), shape=(n_nodes, n_nodes))


def pagerank(
    edges: np.ndarray,
    weights: np.ndarray,
    n_nodes: int,
    damping: float = 0.85,
    max_iter: int = 100,
    tol: float = 1e-8,
) -> np.ndarray:
    """Weighted PageRank (paper Eq. 1).

    ``x_m = (1-d)/N + d * sum_n x_n * w_mn / deg_n`` — each neighbour ``n``
    distributes its score proportionally to its edge weights.  Isolated nodes
    keep the teleport mass ``(1-d)/N``.
    """
    if not 0 < damping < 1:
        raise ModelError(f"damping must be in (0, 1), got {damping}")
    adj = _adjacency(edges, weights, n_nodes)
    degree = np.asarray(adj.sum(axis=1)).ravel()
    inv_degree = np.where(degree > 0, 1.0 / np.maximum(degree, 1e-300), 0.0)
    # Column-stochastic transition: P[m, n] = w_mn / deg_n.
    transition = adj.multiply(inv_degree[np.newaxis, :]).tocsr()
    x = np.ones(n_nodes, dtype=np.float64)
    teleport = (1.0 - damping) / n_nodes
    for _ in range(max_iter):
        x_new = teleport + damping * (transition @ x)
        if np.abs(x_new - x).max() < tol:
            return x_new
        x = x_new
    return x


def label_propagation(
    edges: np.ndarray,
    weights: np.ndarray,
    n_nodes: int,
    seed_labels: dict[int, int],
    n_classes: int = 2,
    max_iter: int = 50,
    tol: float = 1e-6,
) -> np.ndarray:
    """Semi-supervised label propagation (Zhu & Ghahramani).

    The paper's 3 steps per iteration: ``Y <- W Y``; row-normalize ``Y``;
    clamp the seed rows.  Returns the (n_nodes, n_classes) probability
    matrix; for churn, column 1 is the propagated churner probability.
    """
    if n_classes < 2:
        raise ModelError(f"n_classes must be >= 2, got {n_classes}")
    for node, label in seed_labels.items():
        if not 0 <= node < n_nodes:
            raise ModelError(f"seed node {node} out of range")
        if not 0 <= label < n_classes:
            raise ModelError(f"seed label {label} out of range")
    adj = _adjacency(edges, weights, n_nodes)
    y = np.full((n_nodes, n_classes), 1.0 / n_classes)
    seed_rows = np.asarray(sorted(seed_labels), dtype=np.int64)
    seed_matrix = np.zeros((len(seed_rows), n_classes))
    for i, node in enumerate(seed_rows):
        seed_matrix[i, seed_labels[int(node)]] = 1.0
    if len(seed_rows):
        y[seed_rows] = seed_matrix
    for _ in range(max_iter):
        y_new = adj @ y
        totals = y_new.sum(axis=1, keepdims=True)
        # Disconnected nodes receive no mass; keep their previous belief.
        zero = totals.ravel() == 0
        y_new = np.divide(y_new, np.where(totals == 0, 1.0, totals))
        y_new[zero] = y[zero]
        if len(seed_rows):
            y_new[seed_rows] = seed_matrix
        if np.abs(y_new - y).max() < tol:
            return y_new
        y = y_new
    return y
