"""Latent Dirichlet allocation for the topic features of Section 4.1.3.

The paper runs LDA with K=10 over complaint and search-query corpora and uses
the document-topic matrix θ as compact features.  The authors use a belief-
propagation inference scheme; we implement collapsed Gibbs sampling, which
maximizes the same smoothed-LDA posterior and produces the same θ/φ outputs.

Documents are bags of word ids.  The implementation is a straightforward
token-level sampler with count caching; corpora in this reproduction are
small (thousands of short documents) so clarity wins over micro-optimization.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from ..errors import ModelError, NotFittedError, TrainingError


class LatentDirichletAllocation:
    """Smoothed LDA fitted by collapsed Gibbs sampling.

    Parameters
    ----------
    n_topics:
        K; the paper uses 10.
    alpha, beta:
        Symmetric Dirichlet hyper-parameters for θ and φ.
    n_iter:
        Gibbs sweeps over the corpus.
    seed:
        RNG seed; the sampler is deterministic given it.
    """

    def __init__(
        self,
        n_topics: int = 10,
        alpha: float = 0.5,
        beta: float = 0.1,
        n_iter: int = 30,
        seed: int = 0,
        method: str = "bp",
    ) -> None:
        if n_topics < 2:
            raise ModelError(f"n_topics must be >= 2, got {n_topics}")
        if alpha <= 0 or beta <= 0:
            raise ModelError("alpha and beta must be positive")
        if n_iter < 1:
            raise ModelError(f"n_iter must be >= 1, got {n_iter}")
        if method not in ("bp", "gibbs"):
            raise ModelError(f"method must be 'bp' or 'gibbs', got {method!r}")
        self.n_topics = n_topics
        self.alpha = alpha
        self.beta = beta
        self.n_iter = n_iter
        self.seed = seed
        self.method = method
        self._phi: np.ndarray | None = None
        self._vocab_size: int | None = None

    # ------------------------------------------------------------------
    # Fitting
    # ------------------------------------------------------------------

    def fit_transform(
        self, docs: Sequence[Sequence[int]], vocab_size: int
    ) -> np.ndarray:
        """Fit on a corpus and return θ, the (n_docs, K) topic mixture.

        ``method="bp"`` (default) runs the vectorized message-passing /
        EM scheme of the paper's belief-propagation inference [Zeng et al.];
        ``method="gibbs"`` runs token-level collapsed Gibbs sampling.
        Both maximize the same smoothed-LDA posterior (Eq. 2).
        """
        if vocab_size < 1:
            raise ModelError(f"vocab_size must be >= 1, got {vocab_size}")
        if self.method == "bp":
            return self._fit_bp(docs, vocab_size)
        tokens, doc_ids = self._flatten(docs, vocab_size)
        n_docs = len(docs)
        k = self.n_topics
        rng = np.random.default_rng(self.seed)

        assignments = rng.integers(0, k, size=len(tokens))
        doc_topic = np.zeros((n_docs, k), dtype=np.int64)
        word_topic = np.zeros((vocab_size, k), dtype=np.int64)
        topic_total = np.zeros(k, dtype=np.int64)
        np.add.at(doc_topic, (doc_ids, assignments), 1)
        np.add.at(word_topic, (tokens, assignments), 1)
        np.add.at(topic_total, assignments, 1)

        v_beta = vocab_size * self.beta
        for _ in range(self.n_iter):
            unit_draws = rng.random(len(tokens))
            for i in range(len(tokens)):
                w = tokens[i]
                d = doc_ids[i]
                z = assignments[i]
                doc_topic[d, z] -= 1
                word_topic[w, z] -= 1
                topic_total[z] -= 1
                probs = (
                    (doc_topic[d] + self.alpha)
                    * (word_topic[w] + self.beta)
                    / (topic_total + v_beta)
                )
                cumulative = np.cumsum(probs)
                z = int(np.searchsorted(cumulative, unit_draws[i] * cumulative[-1]))
                z = min(z, k - 1)
                assignments[i] = z
                doc_topic[d, z] += 1
                word_topic[w, z] += 1
                topic_total[z] += 1

        theta = (doc_topic + self.alpha) / (
            doc_topic.sum(axis=1, keepdims=True) + k * self.alpha
        )
        self._phi = (word_topic + self.beta).T / (
            topic_total[:, np.newaxis] + v_beta
        )
        self._vocab_size = vocab_size
        return theta

    def _fit_bp(
        self, docs: Sequence[Sequence[int]], vocab_size: int
    ) -> np.ndarray:
        """Vectorized message-passing over the sparse doc-word matrix.

        Each iteration updates responsibilities ``μ(d,w,k) ∝ θ_dk φ_kw`` for
        every non-zero (doc, word) pair at once, then re-estimates θ and φ
        with Dirichlet smoothing — the coordinate-descent structure of the
        paper's BP inference.
        """
        tokens, doc_ids = self._flatten(docs, vocab_size)
        # Collapse repeated (doc, word) pairs into counts.
        pair_key = doc_ids.astype(np.int64) * vocab_size + tokens
        uniq, inverse, counts = np.unique(
            pair_key, return_inverse=True, return_counts=True
        )
        del inverse
        pd = (uniq // vocab_size).astype(np.intp)
        pw = (uniq % vocab_size).astype(np.intp)
        weights = counts.astype(np.float64)
        n_docs = len(docs)
        k = self.n_topics
        rng = np.random.default_rng(self.seed)

        theta = rng.dirichlet(np.ones(k), size=n_docs)
        phi = rng.dirichlet(np.ones(vocab_size), size=k)
        for _ in range(self.n_iter):
            resp = theta[pd] * phi[:, pw].T  # (nnz, k)
            resp /= np.maximum(resp.sum(axis=1, keepdims=True), 1e-300)
            resp *= weights[:, None]
            doc_topic = np.zeros((n_docs, k))
            np.add.at(doc_topic, pd, resp)
            word_topic = np.zeros((vocab_size, k))
            np.add.at(word_topic, pw, resp)
            theta = (doc_topic + self.alpha) / (
                doc_topic.sum(axis=1, keepdims=True) + k * self.alpha
            )
            phi = (word_topic.T + self.beta) / (
                word_topic.sum(axis=0)[:, None] + vocab_size * self.beta
            )
        self._phi = phi
        self._vocab_size = vocab_size
        return theta

    # ------------------------------------------------------------------
    # Inference on new documents
    # ------------------------------------------------------------------

    def transform(self, docs: Sequence[Sequence[int]]) -> np.ndarray:
        """θ for unseen documents under the fitted φ (folding-in).

        Runs the same message-passing as :meth:`_fit_bp` with φ held fixed,
        vectorized across all documents.  Empty documents get the uniform
        prior mixture.
        """
        if self._phi is None or self._vocab_size is None:
            raise NotFittedError("LDA.transform called before fit_transform")
        k = self.n_topics
        n_docs = len(docs)
        pd_list: list[int] = []
        pw_list: list[int] = []
        for d, doc in enumerate(docs):
            for w in doc:
                if not 0 <= int(w) < self._vocab_size:
                    raise ModelError("word id out of vocabulary range")
                pd_list.append(d)
                pw_list.append(int(w))
        theta = np.full((n_docs, k), 1.0 / k)
        if not pd_list:
            return theta
        pd = np.asarray(pd_list, dtype=np.intp)
        pw = np.asarray(pw_list, dtype=np.intp)
        phi = self._phi
        for _ in range(10):
            resp = theta[pd] * phi[:, pw].T
            resp /= np.maximum(resp.sum(axis=1, keepdims=True), 1e-300)
            doc_topic = np.zeros((n_docs, k))
            np.add.at(doc_topic, pd, resp)
            theta = (doc_topic + self.alpha) / (
                doc_topic.sum(axis=1, keepdims=True) + k * self.alpha
            )
        return theta

    @property
    def topic_word(self) -> np.ndarray:
        """φ, the (K, vocab) topic-word distribution."""
        if self._phi is None:
            raise NotFittedError("LDA has not been fitted")
        return self._phi

    def top_words(self, topic: int, n: int = 10) -> list[int]:
        """Word ids with the highest probability under one topic."""
        phi = self.topic_word
        if not 0 <= topic < self.n_topics:
            raise ModelError(f"topic {topic} out of range")
        return np.argsort(-phi[topic])[:n].tolist()

    @staticmethod
    def _flatten(
        docs: Sequence[Sequence[int]], vocab_size: int
    ) -> tuple[np.ndarray, np.ndarray]:
        tokens: list[int] = []
        doc_ids: list[int] = []
        for d, doc in enumerate(docs):
            for w in doc:
                tokens.append(int(w))
                doc_ids.append(d)
        if not tokens:
            raise TrainingError("corpus is empty")
        tokens_arr = np.asarray(tokens, dtype=np.int64)
        if tokens_arr.max() >= vocab_size or tokens_arr.min() < 0:
            raise ModelError("word id out of vocabulary range")
        return tokens_arr, np.asarray(doc_ids, dtype=np.int64)
