"""CART decision trees with the paper's Gini-improvement criterion.

Section 4.2 of the paper: each node evaluates every candidate split point of
a random √N-subset of features and takes the split with the maximum Gini
improvement (Eq. 5–6); splitting stops when a node holds fewer than the
minimum leaf count.  Instance weights are supported throughout because the
paper's preferred imbalance treatment is instance weighting (Table 7).

The same tree, with a variance (MSE) criterion, serves as the base learner
for GBDT.

Split search is vectorized per feature: one sort plus cumulative class-mass
arrays evaluate *all* split points of a feature at once.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import ModelError, NotFittedError, TrainingError

#: Sentinel feature id marking a leaf node.
LEAF = -1


@dataclass
class _Split:
    feature: int
    threshold: float
    improvement: float
    left_index: np.ndarray
    right_index: np.ndarray


class DecisionTree:
    """A single CART tree.

    Parameters
    ----------
    criterion:
        ``"gini"`` for binary classification (leaf value = weighted positive
        fraction) or ``"mse"`` for regression (leaf value = weighted mean).
    max_depth:
        Depth cap; root is depth 0.
    min_samples_leaf:
        Minimum (unweighted) instances in each child of a split — the
        paper's over-fitting guard, set to 100 in deployment.
    max_features:
        ``None`` (all), ``"sqrt"`` (the paper's √N subspace) or an int.
    seed:
        Feature-subsampling RNG seed.
    """

    def __init__(
        self,
        criterion: str = "gini",
        max_depth: int = 25,
        min_samples_leaf: int = 1,
        max_features: str | int | None = None,
        seed: int = 0,
    ) -> None:
        if criterion not in ("gini", "mse"):
            raise ModelError(f"unknown criterion {criterion!r}")
        if max_depth < 1:
            raise ModelError(f"max_depth must be >= 1, got {max_depth}")
        if min_samples_leaf < 1:
            raise ModelError(
                f"min_samples_leaf must be >= 1, got {min_samples_leaf}"
            )
        self.criterion = criterion
        self.max_depth = max_depth
        self.min_samples_leaf = min_samples_leaf
        self.max_features = max_features
        self.seed = seed
        # Flat array representation, filled by fit().
        self._feature: np.ndarray | None = None
        self._threshold: np.ndarray | None = None
        self._left: np.ndarray | None = None
        self._right: np.ndarray | None = None
        self._value: np.ndarray | None = None
        self._importances: np.ndarray | None = None
        self._n_features = 0

    # ------------------------------------------------------------------
    # Fitting
    # ------------------------------------------------------------------

    def fit(
        self,
        x: np.ndarray,
        y: np.ndarray,
        sample_weight: np.ndarray | None = None,
    ) -> "DecisionTree":
        x = np.asarray(x, dtype=np.float64)
        y = np.asarray(y, dtype=np.float64)
        if x.ndim != 2:
            raise ModelError(f"x must be 2-D, got {x.ndim}-D")
        if len(x) != len(y):
            raise ModelError(f"x has {len(x)} rows but y has {len(y)}")
        if len(x) == 0:
            raise TrainingError("cannot fit a tree on zero instances")
        if self.criterion == "gini":
            labels = set(np.unique(y).tolist())
            if not labels <= {0.0, 1.0}:
                raise ModelError(f"gini criterion needs 0/1 labels, got {labels}")
        if sample_weight is None:
            sample_weight = np.ones(len(y))
        else:
            sample_weight = np.asarray(sample_weight, dtype=np.float64)
            if len(sample_weight) != len(y):
                raise ModelError("sample_weight length mismatch")
            if np.any(sample_weight < 0):
                raise ModelError("sample weights must be non-negative")

        self._n_features = x.shape[1]
        n_candidates = self._resolve_max_features(x.shape[1])
        rng = np.random.default_rng(self.seed)

        feature: list[int] = []
        threshold: list[float] = []
        left: list[int] = []
        right: list[int] = []
        value: list[float] = []
        importances = np.zeros(x.shape[1])
        total_weight = sample_weight.sum()

        # (node_id, row indices, depth) — depth-first construction.
        root_index = np.arange(len(y))
        stack = [(self._new_node(feature, threshold, left, right, value), root_index, 0)]
        while stack:
            node_id, index, depth = stack.pop()
            w = sample_weight[index]
            t = y[index]
            node_value = float(np.average(t, weights=w)) if w.sum() > 0 else float(
                t.mean()
            )
            value[node_id] = node_value
            if (
                depth >= self.max_depth
                or len(index) < 2 * self.min_samples_leaf
                or _is_pure(t)
            ):
                continue
            split = self._best_split(x, y, sample_weight, index, n_candidates, rng)
            if split is None:
                continue
            importances[split.feature] += split.improvement * (
                w.sum() / total_weight
            )
            feature[node_id] = split.feature
            threshold[node_id] = split.threshold
            left_id = self._new_node(feature, threshold, left, right, value)
            right_id = self._new_node(feature, threshold, left, right, value)
            left[node_id] = left_id
            right[node_id] = right_id
            stack.append((left_id, split.left_index, depth + 1))
            stack.append((right_id, split.right_index, depth + 1))

        self._feature = np.asarray(feature, dtype=np.int64)
        self._threshold = np.asarray(threshold, dtype=np.float64)
        self._left = np.asarray(left, dtype=np.int64)
        self._right = np.asarray(right, dtype=np.int64)
        self._value = np.asarray(value, dtype=np.float64)
        self._importances = importances
        return self

    @staticmethod
    def _new_node(feature, threshold, left, right, value) -> int:
        feature.append(LEAF)
        threshold.append(0.0)
        left.append(-1)
        right.append(-1)
        value.append(0.0)
        return len(feature) - 1

    def _resolve_max_features(self, n_features: int) -> int:
        if self.max_features is None:
            return n_features
        if self.max_features == "sqrt":
            return max(1, int(np.sqrt(n_features)))
        if isinstance(self.max_features, int) and self.max_features >= 1:
            return min(self.max_features, n_features)
        raise ModelError(f"bad max_features: {self.max_features!r}")

    def _best_split(
        self,
        x: np.ndarray,
        y: np.ndarray,
        sample_weight: np.ndarray,
        index: np.ndarray,
        n_candidates: int,
        rng: np.random.Generator,
    ) -> _Split | None:
        n_features = x.shape[1]
        if n_candidates < n_features:
            candidates = rng.choice(n_features, size=n_candidates, replace=False)
        else:
            candidates = np.arange(n_features)
        w = sample_weight[index]
        t = y[index]
        best: _Split | None = None
        parent_impurity = self._impurity(t, w)
        w_total = w.sum()
        if w_total <= 0:
            return None
        min_leaf = self.min_samples_leaf
        for j in candidates:
            values = x[index, j]
            order = np.argsort(values, kind="mergesort")
            v_sorted = values[order]
            # Candidate boundaries: between distinct values with both sides
            # holding at least min_samples_leaf instances.
            boundaries = np.flatnonzero(v_sorted[:-1] != v_sorted[1:])
            boundaries = boundaries[
                (boundaries + 1 >= min_leaf)
                & (len(index) - boundaries - 1 >= min_leaf)
            ]
            if len(boundaries) == 0:
                continue
            w_sorted = w[order]
            t_sorted = t[order]
            cum_w = np.cumsum(w_sorted)
            if self.criterion == "gini":
                cum_pos = np.cumsum(w_sorted * t_sorted)
                w_left = cum_w[boundaries]
                w_right = w_total - w_left
                pos_left = cum_pos[boundaries]
                pos_right = cum_pos[-1] - pos_left
                gini_left = _gini_from_mass(pos_left, w_left)
                gini_right = _gini_from_mass(pos_right, w_right)
                q = w_left / w_total
                improvement = parent_impurity - q * gini_left - (1 - q) * gini_right
            else:
                cum_s = np.cumsum(w_sorted * t_sorted)
                cum_s2 = np.cumsum(w_sorted * t_sorted * t_sorted)
                w_left = cum_w[boundaries]
                w_right = w_total - w_left
                s_left = cum_s[boundaries]
                s_right = cum_s[-1] - s_left
                s2_left = cum_s2[boundaries]
                s2_right = cum_s2[-1] - s2_left
                var_left = _variance_from_moments(s_left, s2_left, w_left)
                var_right = _variance_from_moments(s_right, s2_right, w_right)
                q = w_left / w_total
                improvement = (
                    parent_impurity - q * var_left - (1 - q) * var_right
                )
            k = int(np.argmax(improvement))
            if improvement[k] <= 1e-12:
                continue
            if best is None or improvement[k] > best.improvement:
                b = boundaries[k]
                thr = 0.5 * (v_sorted[b] + v_sorted[b + 1])
                go_left = values <= thr
                # For adjacent floats the midpoint can round onto one of
                # the two values and sweep every row to one side; such a
                # split is unusable.
                if go_left.all() or not go_left.any():
                    continue
                best = _Split(
                    feature=int(j),
                    threshold=float(thr),
                    improvement=float(improvement[k]),
                    left_index=index[go_left],
                    right_index=index[~go_left],
                )
        return best

    def _impurity(self, t: np.ndarray, w: np.ndarray) -> float:
        w_total = w.sum()
        if w_total <= 0:
            return 0.0
        if self.criterion == "gini":
            p = float((w * t).sum() / w_total)
            return 1.0 - p * p - (1 - p) * (1 - p)
        mean = float((w * t).sum() / w_total)
        return float((w * (t - mean) ** 2).sum() / w_total)

    # ------------------------------------------------------------------
    # Prediction
    # ------------------------------------------------------------------

    def predict(self, x: np.ndarray) -> np.ndarray:
        """Leaf values: churner fraction (gini) or mean target (mse)."""
        return self._value_checked()[self.apply(x)]

    def apply(self, x: np.ndarray) -> np.ndarray:
        """Leaf node id each row lands in (vectorized traversal)."""
        self._value_checked()
        assert self._feature is not None and self._threshold is not None
        assert self._left is not None and self._right is not None
        x = np.asarray(x, dtype=np.float64)
        if x.ndim != 2:
            raise ModelError(f"x must be 2-D, got {x.ndim}-D")
        if x.shape[1] != self._n_features:
            raise ModelError(
                f"x has {x.shape[1]} features, tree fitted with {self._n_features}"
            )
        node = np.zeros(len(x), dtype=np.int64)
        rows = np.arange(len(x))
        for _ in range(self.max_depth + 1):
            feat = self._feature[node]
            active = feat != LEAF
            if not active.any():
                break
            act_rows = rows[active]
            act_nodes = node[active]
            go_left = (
                x[act_rows, self._feature[act_nodes]]
                <= self._threshold[act_nodes]
            )
            node[act_rows] = np.where(
                go_left, self._left[act_nodes], self._right[act_nodes]
            )
        return node

    @property
    def feature_importances_(self) -> np.ndarray:
        """Per-feature summed (weighted) Gini/variance improvements (Eq. 7)."""
        if self._importances is None:
            raise NotFittedError("tree has not been fitted")
        return self._importances

    @property
    def node_count(self) -> int:
        return len(self._value_checked())

    @property
    def n_leaves(self) -> int:
        self._value_checked()
        assert self._feature is not None
        return int((self._feature == LEAF).sum())

    def leaf_values(self) -> np.ndarray:
        """Values of all nodes (leaves carry the predictions)."""
        return self._value_checked().copy()

    def set_leaf_values(self, values: np.ndarray) -> None:
        """Overwrite node values (used by GBDT's Newton leaf refit)."""
        current = self._value_checked()
        values = np.asarray(values, dtype=np.float64)
        if values.shape != current.shape:
            raise ModelError(
                f"expected {current.shape} values, got {values.shape}"
            )
        self._value = values

    def _value_checked(self) -> np.ndarray:
        if self._value is None:
            raise NotFittedError("tree has not been fitted")
        return self._value


def _is_pure(t: np.ndarray) -> bool:
    return bool(np.all(t == t[0]))


def _gini_from_mass(pos_mass: np.ndarray, total_mass: np.ndarray) -> np.ndarray:
    safe = np.maximum(total_mass, 1e-300)
    p = pos_mass / safe
    return 1.0 - p * p - (1.0 - p) * (1.0 - p)


def _variance_from_moments(
    s: np.ndarray, s2: np.ndarray, w: np.ndarray
) -> np.ndarray:
    safe = np.maximum(w, 1e-300)
    mean = s / safe
    return np.maximum(s2 / safe - mean * mean, 0.0)
