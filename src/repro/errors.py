"""Exception hierarchy for the ``repro`` library.

Every error raised by the library derives from :class:`ReproError`, so that
callers can catch library failures with a single ``except`` clause while still
being able to distinguish the subsystem that failed.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by the ``repro`` library."""


class ConfigError(ReproError):
    """An invalid configuration value was supplied."""


class DataPlatformError(ReproError):
    """Base class for errors raised by the mini data platform."""


class StorageError(DataPlatformError):
    """A block-store operation failed (missing block, bad replica, ...)."""


class TransientError(DataPlatformError):
    """A retryable failure (flaky read, dead worker, feed hiccup).

    Raised by fault injection and by the platform's own transient paths;
    :class:`~repro.dataplat.resilience.RetryPolicy` treats it as retryable
    where other :class:`DataPlatformError` subclasses are terminal.
    """


class SchemaError(DataPlatformError):
    """A table schema was violated or two schemas are incompatible."""


class CatalogError(DataPlatformError):
    """A catalog (metastore) operation failed, e.g. unknown table."""


class SQLError(DataPlatformError):
    """Base class for SQL front-end errors."""


class SQLSyntaxError(SQLError):
    """The SQL text could not be tokenized or parsed."""

    def __init__(self, message: str, position: int | None = None) -> None:
        self.position = position
        if position is not None:
            message = f"{message} (at offset {position})"
        super().__init__(message)


class SQLAnalysisError(SQLError):
    """The SQL parsed but is semantically invalid (unknown column, ...)."""


class ExecutionError(DataPlatformError):
    """A physical plan failed during execution."""


class ETLError(DataPlatformError):
    """An extract-transform-load job failed."""


class ModelError(ReproError):
    """Base class for errors raised by the ML substrate."""


class NotFittedError(ModelError):
    """A model was asked to predict before being fitted."""


class TrainingError(ModelError):
    """Model training failed (degenerate input, bad hyper-parameter, ...)."""


class FeatureError(ReproError):
    """Feature engineering failed (missing table, bad category, ...)."""


class ServeError(ReproError):
    """The online scoring service was misused or misconfigured.

    Raised for request-path contract violations (unknown customer id,
    non-monotone clock, double-terminal transition) and for serving
    configuration errors; *load*-related conditions (queue full, deadline
    missed, storage faults) are never exceptions — they become terminal
    request outcomes instead, so an overloaded service degrades rather
    than crashes.
    """


class SimulationError(ReproError):
    """The synthetic telco simulator was driven with invalid arguments."""


class ExperimentError(ReproError):
    """An experiment runner was configured inconsistently."""
