"""Command-line interface: regenerate any paper table/figure.

Usage::

    python -m repro list
    python -m repro table1 --population 4000
    python -m repro table2 --population 4000 --trees 30
    python -m repro fig7 --population 3000 --seed 11
    python -m repro rootcause --population 3000 --top 50

Every experiment command simulates a fresh world at the requested scale,
runs the corresponding Section-5 experiment and prints the paper-shaped
table (see EXPERIMENTS.md for what shape to expect).
"""

from __future__ import annotations

import argparse
import sys
import time

from .config import ModelConfig, ScaleConfig
from .core import experiments as ex
from .core import reporting as rep
from .core.experiments import table4_importance
from .core.pipeline import ChurnPipeline, DEFAULT_PAPER_U
from .core.rootcause import RootCauseAnalyzer, report_root_causes
from .core.window import WindowSpec
from .datagen import TelcoSimulator
from .features.spec import ALL_CATEGORIES

#: Experiment command → short description.
COMMANDS = {
    "fig1": "monthly churn rates, prepaid vs postpaid",
    "table1": "per-month dataset statistics",
    "fig5": "days-to-recharge distribution",
    "fig7": "Volume: metrics vs training months",
    "table2": "Variety: per-family feature lifts",
    "table3": "overall performance (150 features, 4 months)",
    "table4": "RF feature-importance ranking",
    "table5": "Velocity: metrics vs sliding stride",
    "table6": "Value: A/B retention campaigns",
    "fig8": "early signals: metrics vs lead time",
    "table7": "class-imbalance treatments",
    "fig9": "classifier comparison",
    "rootcause": "per-churner root causes (paper extension)",
    "netopt": "counterfactual network-optimization study (paper extension)",
    "monitor": "feature/score drift report between two months (PSI)",
    "list": "list available experiments",
}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Reproduce 'Telco Churn Prediction with Big Data' (SIGMOD 2015)",
    )
    parser.add_argument(
        "experiment",
        choices=sorted(COMMANDS),
        help="which table/figure to regenerate",
    )
    parser.add_argument("--population", type=int, default=3000,
                        help="synthetic customers per month (default 3000)")
    parser.add_argument("--months", type=int, default=9,
                        help="simulated months (default 9, like the paper)")
    parser.add_argument("--seed", type=int, default=7, help="world seed")
    parser.add_argument("--trees", type=int, default=25,
                        help="random-forest size (default 25)")
    parser.add_argument("--min-leaf", type=int, default=25,
                        help="minimum samples per RF leaf (default 25)")
    parser.add_argument("--top", type=int, default=50,
                        help="rootcause: analyse the top-N churners")
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if args.experiment == "list":
        for name, description in sorted(COMMANDS.items()):
            print(f"  {name:<10} {description}")
        return 0

    scale = ScaleConfig(
        population=args.population, months=args.months, seed=args.seed
    )
    model = ModelConfig(n_trees=args.trees, min_samples_leaf=args.min_leaf)
    started = time.time()
    print(
        f"simulating {scale.population} customers x {scale.months} months "
        f"(seed {scale.seed}) ...",
        file=sys.stderr,
    )
    world = TelcoSimulator(scale).run()

    if args.experiment == "fig1":
        print(rep.report_fig1(ex.fig1_churn_rates(world)))
    elif args.experiment == "table1":
        print(rep.report_table1(ex.table1_dataset_stats(world)))
    elif args.experiment == "fig5":
        print(rep.report_fig5(ex.fig5_recharge_distribution(world)))
    elif args.experiment == "fig7":
        pipeline = ChurnPipeline(world, scale, categories=("F1",), model=model)
        print(rep.report_fig7(ex.fig7_volume(pipeline), DEFAULT_PAPER_U))
    elif args.experiment == "table2":
        pipeline = ChurnPipeline(world, scale, categories=("F1",), model=model)
        print(rep.report_table2(ex.table2_variety(pipeline)))
    elif args.experiment == "table3":
        pipeline = ChurnPipeline(world, scale, model=model)
        print(rep.report_table3(ex.table3_overall(pipeline)))
    elif args.experiment == "table4":
        pipeline = ChurnPipeline(world, scale, model=model)
        data = ex.table3_overall(pipeline)
        print(rep.report_table4(table4_importance(data["result"])))
    elif args.experiment == "table5":
        pipeline = ChurnPipeline(world, scale, categories=("F1",), model=model)
        print(rep.report_table5(ex.table5_velocity(pipeline)))
    elif args.experiment == "table6":
        pipeline = ChurnPipeline(world, scale, model=model)
        print(rep.report_table6(ex.table6_value(pipeline)))
    elif args.experiment == "fig8":
        pipeline = ChurnPipeline(world, scale, categories=("F1",), model=model)
        print(rep.report_fig8(ex.fig8_early_signals(pipeline)))
    elif args.experiment == "table7":
        print(rep.report_table7(ex.table7_imbalance(world, scale, model)))
    elif args.experiment == "fig9":
        print(rep.report_fig9(ex.fig9_classifiers(world, scale, model)))
    elif args.experiment == "netopt":
        from .core.netopt import run_network_optimization_study

        report = run_network_optimization_study(
            scale, model=model, seed=args.seed
        )
        print(report.render())
    elif args.experiment == "monitor":
        from .core.monitoring import ModelMonitor

        pipeline = ChurnPipeline(world, scale, categories=("F1",), model=model)
        ref_month, cur_month = 2, world.n_months
        spec_ref = WindowSpec((ref_month - 1,), ref_month)
        spec_cur = WindowSpec((cur_month - 1,), cur_month)
        ref = pipeline.run_window(spec_ref)
        cur = pipeline.run_window(spec_cur)
        ref_block = pipeline.builder.features(ref_month, ("F1",))
        cur_block = pipeline.builder.features(cur_month, ("F1",))
        monitor = ModelMonitor(
            list(ref_block.names),
            ref_block.values[ref.test_slots],
            reference_scores=ref.scores,
            reference_churn_rate=float(ref.labels.mean()),
            reference_label=f"month {ref_month}",
        )
        report = monitor.compare(
            cur_block.values[cur.test_slots],
            current_scores=cur.scores,
            current_churn_rate=float(cur.labels.mean()),
            current_label=f"month {cur_month}",
        )
        print(report.render())
    elif args.experiment == "rootcause":
        pipeline = ChurnPipeline(world, scale, model=model)
        test_month = world.n_months - 1
        spec = WindowSpec(
            tuple(range(test_month - 2, test_month)), test_month
        )
        result = pipeline.run_window(spec, categories=ALL_CATEGORIES)
        features = pipeline.builder.features(
            test_month, ALL_CATEGORIES
        ).values[result.test_slots]
        analyzer = RootCauseAnalyzer(result, features)
        print(report_root_causes(analyzer, args.top))
    print(f"done in {time.time() - started:.0f}s", file=sys.stderr)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
